//! Vertex permutations for graph/dataset reordering.

use crate::{CsrGraph, VertexId};

/// A bijection on vertex ids, stored as `new_id = forward[old_id]`.
///
/// SALIENT++ reorders graphs so that vertices of the same partition are
/// contiguous and, within a partition, sorted by descending VIP value
/// (paper §4.1). The permutation type carries the mapping in both
/// directions so features, labels, and splits can be relabeled
/// consistently with the graph.
///
/// # Example
///
/// ```
/// use spp_graph::Permutation;
///
/// let p = Permutation::from_forward(vec![2, 0, 1]); // old 0 -> new 2, ...
/// assert_eq!(p.to_new(0), 2);
/// assert_eq!(p.to_old(2), 0);
/// assert_eq!(p.inverse().to_new(2), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<VertexId>,
    backward: Vec<VertexId>,
}

impl Permutation {
    /// Identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        let forward: Vec<VertexId> = (0..n as VertexId).collect();
        Self {
            backward: forward.clone(),
            forward,
        }
    }

    /// Builds a permutation from a forward map (`forward[old] = new`).
    ///
    /// # Panics
    ///
    /// Panics if `forward` is not a bijection on `0..forward.len()`.
    pub fn from_forward(forward: Vec<VertexId>) -> Self {
        let n = forward.len();
        let mut backward = vec![VertexId::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            let new = new as usize;
            assert!(new < n, "permutation target {new} out of range");
            assert!(
                backward[new] == VertexId::MAX,
                "duplicate permutation target {new}"
            );
            backward[new] = old as VertexId;
        }
        Self { forward, backward }
    }

    /// Builds a permutation that places vertices in the order given by
    /// `order` (i.e. `order[i]` becomes vertex `i`).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a bijection.
    pub fn from_order(order: Vec<VertexId>) -> Self {
        let p = Self::from_forward(order);
        p.inverse()
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True if the permutation is over zero vertices.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Maps an old vertex id to its new id.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> VertexId {
        self.forward[old as usize]
    }

    /// Maps a new vertex id back to its old id.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.backward[new as usize]
    }

    /// The forward map as a slice (`forward[old] = new`).
    pub fn forward(&self) -> &[VertexId] {
        &self.forward
    }

    /// The backward map as a slice (`backward[new] = old`).
    pub fn backward(&self) -> &[VertexId] {
        &self.backward
    }

    /// Returns the inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            forward: self.backward.clone(),
            backward: self.forward.clone(),
        }
    }

    /// Applies the permutation to a graph, relabeling all vertices.
    pub fn apply_to_graph(&self, g: &CsrGraph) -> CsrGraph {
        assert_eq!(g.num_vertices(), self.len(), "size mismatch");
        let n = g.num_vertices();
        let mut row_ptr = vec![0usize; n + 1];
        for new in 0..n {
            let old = self.backward[new];
            // spp-lint: allow(l2-csr-index): building the permuted graph's offsets via the checked degree accessor
            row_ptr[new + 1] = row_ptr[new] + g.degree(old);
        }
        let mut col = Vec::with_capacity(g.num_edges());
        for new in 0..n {
            let old = self.backward[new];
            let start = col.len();
            col.extend(g.neighbors(old).iter().map(|&u| self.forward[u as usize]));
            col[start..].sort_unstable();
        }
        CsrGraph::from_raw_parts(row_ptr, col)
    }

    /// Applies the permutation to a per-vertex value array.
    pub fn apply_to_values<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "size mismatch");
        (0..self.len())
            .map(|new| values[self.backward[new] as usize].clone())
            .collect()
    }

    /// Relabels a list of vertex ids in place.
    pub fn relabel(&self, ids: &mut [VertexId]) {
        for id in ids {
            *id = self.forward[*id as usize];
        }
    }
}

/// A vertex permutation with page structure: rows placed in score order
/// and grouped into fixed-size pages.
///
/// Out-of-core, the paper's VIP ordering becomes a *page locality*
/// optimization: sorting rows by descending VIP score before writing a
/// paged store (`spp-store`) concentrates the frequently sampled
/// vertices onto the first few pages, so an epoch touches far fewer
/// distinct pages than a scattered layout at the same page size. This
/// type couples the ordering [`Permutation`] with the page geometry it
/// was built for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PagedPermutation {
    perm: Permutation,
    page_rows: usize,
}

impl PagedPermutation {
    /// Orders vertices by descending `scores` (ties broken by ascending
    /// id, via `total_cmp`, so the order is a pure function of the
    /// scores — no float-equality hazards) into pages of `page_rows`.
    ///
    /// # Panics
    ///
    /// Panics if `page_rows` is zero.
    pub fn from_scores(scores: &[f64], page_rows: usize) -> Self {
        assert!(page_rows > 0, "page_rows must be positive");
        let mut order: Vec<VertexId> = (0..scores.len() as VertexId).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .total_cmp(&scores[a as usize])
                .then(a.cmp(&b))
        });
        Self {
            perm: Permutation::from_order(order),
            page_rows,
        }
    }

    /// Wraps an existing permutation with a page geometry.
    ///
    /// # Panics
    ///
    /// Panics if `page_rows` is zero.
    pub fn from_permutation(perm: Permutation, page_rows: usize) -> Self {
        assert!(page_rows > 0, "page_rows must be positive");
        Self { perm, page_rows }
    }

    /// The underlying ordering permutation (`to_new` maps an original id
    /// to its physical row slot).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Rows per page.
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Page that holds the (reordered) slot of original vertex `old`.
    #[inline]
    pub fn page_of(&self, old: VertexId) -> usize {
        self.perm.to_new(old) as usize / self.page_rows
    }

    /// Number of pages (`ceil(len / page_rows)`).
    pub fn num_pages(&self) -> usize {
        self.perm.len().div_ceil(self.page_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn identity_maps_to_self() {
        let p = Permutation::identity(4);
        for v in 0..4 {
            assert_eq!(p.to_new(v), v);
            assert_eq!(p.to_old(v), v);
        }
    }

    #[test]
    fn forward_backward_consistency() {
        let p = Permutation::from_forward(vec![2, 0, 3, 1]);
        for old in 0..4 {
            assert_eq!(p.to_old(p.to_new(old)), old);
        }
    }

    #[test]
    fn from_order_places_in_order() {
        // We want vertex 3 first, then 1, then 0, then 2.
        let p = Permutation::from_order(vec![3, 1, 0, 2]);
        assert_eq!(p.to_new(3), 0);
        assert_eq!(p.to_new(1), 1);
        assert_eq!(p.to_new(0), 2);
        assert_eq!(p.to_new(2), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate permutation target")]
    fn rejects_non_bijection() {
        Permutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn graph_relabeling_preserves_structure() {
        let mut b = GraphBuilder::new(4);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(2, 3);
        let g = b.build();
        let p = Permutation::from_forward(vec![3, 2, 1, 0]);
        let g2 = p.apply_to_graph(&g);
        assert_eq!(g2.num_edges(), g.num_edges());
        // old edge (0,1) is now (3,2)
        assert!(g2.has_edge(3, 2));
        assert!(g2.has_edge(2, 1));
        assert!(g2.has_edge(1, 0));
        assert!(!g2.has_edge(3, 0));
        // Degrees follow the relabeling.
        for old in 0..4u32 {
            assert_eq!(g.degree(old), g2.degree(p.to_new(old)));
        }
    }

    #[test]
    fn values_follow_permutation() {
        let p = Permutation::from_forward(vec![1, 2, 0]);
        let vals = vec!["a", "b", "c"];
        assert_eq!(p.apply_to_values(&vals), vec!["c", "a", "b"]);
    }

    #[test]
    fn relabel_ids() {
        let p = Permutation::from_forward(vec![1, 2, 0]);
        let mut ids = vec![0, 2];
        p.relabel(&mut ids);
        assert_eq!(ids, vec![1, 0]);
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::from_forward(vec![2, 0, 3, 1]);
        let q = p.inverse();
        for v in 0..4 {
            assert_eq!(q.to_new(p.to_new(v)), v);
        }
    }

    #[test]
    fn paged_permutation_orders_by_descending_score() {
        let scores = [0.1, 0.9, 0.5, 0.9, 0.0];
        let p = PagedPermutation::from_scores(&scores, 2);
        // Descending score, ties by ascending id: 1, 3, 2, 0, 4.
        assert_eq!(p.permutation().to_new(1), 0);
        assert_eq!(p.permutation().to_new(3), 1);
        assert_eq!(p.permutation().to_new(2), 2);
        assert_eq!(p.permutation().to_new(0), 3);
        assert_eq!(p.permutation().to_new(4), 4);
        assert_eq!(p.page_rows(), 2);
        assert_eq!(p.num_pages(), 3);
        // The two hottest vertices share page 0.
        assert_eq!(p.page_of(1), 0);
        assert_eq!(p.page_of(3), 0);
        assert_eq!(p.page_of(4), 2);
    }

    #[test]
    fn paged_permutation_handles_nan_scores_deterministically() {
        // total_cmp sorts NaN above +inf in descending order; the point
        // is only that the result is a valid, reproducible bijection.
        let scores = [f64::NAN, 1.0, f64::NAN, 0.5];
        let a = PagedPermutation::from_scores(&scores, 2);
        let b = PagedPermutation::from_scores(&scores, 2);
        assert_eq!(a, b);
        let mut slots: Vec<u32> = (0..4).map(|v| a.permutation().to_new(v)).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2, 3]);
    }
}
