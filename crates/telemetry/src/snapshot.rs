//! Live run snapshots: an `spp-top`-style periodic text dashboard.
//!
//! Long bench and serving runs are opaque between start and final
//! summary; this module makes them inspectable in flight. Setting
//! `SPP_SNAPSHOT=<secs>` (see [`crate::export::init_from_env`]) starts
//! one detached observer thread that, every `<secs>` seconds, takes a
//! [`crate::metrics::snapshot`], diffs it against the previous tick,
//! and prints a compact dashboard to stderr: counter totals with
//! per-second rates over the window, gauge last/max, and histogram
//! count/p50/p99/p999/max (sketch-resolution quantiles since the
//! registry shares the [`crate::sketch`] bucket layout).
//!
//! The renderer itself ([`render_dashboard`]) is a pure function of two
//! snapshots, so it is unit-testable and usable directly — harnesses
//! that want an on-demand dashboard call
//! `render_dashboard(prev.as_ref(), &metrics::snapshot(), dt)` without
//! starting the thread. The observer thread only ever *reads* telemetry
//! (snapshot + render + eprint); it never writes metrics and never
//! joins the computation, so it cannot perturb the §9 determinism
//! contract any more than telemetry itself does.

use crate::metrics::{self, MetricsSnapshot};
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Set once the observer thread has been spawned (one per process).
static STARTED: OnceLock<()> = OnceLock::new();

/// Renders the dashboard for the window between `prev` and `cur`
/// (`elapsed_secs` apart). With `prev = None` the rates column shows
/// the whole-run average assuming `elapsed_secs` since start.
#[must_use]
pub fn render_dashboard(
    prev: Option<&MetricsSnapshot>,
    cur: &MetricsSnapshot,
    elapsed_secs: f64,
) -> String {
    let dt = if elapsed_secs > 0.0 {
        elapsed_secs
    } else {
        1.0
    };
    let prev_counter = |name: &str| -> u64 {
        prev.and_then(|p| p.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v))
            .unwrap_or(0)
    };
    let prev_hist_count = |name: &str| -> u64 {
        prev.and_then(|p| {
            p.histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.count)
        })
        .unwrap_or(0)
    };
    let width = cur
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(cur.gauges.iter().map(|(n, _)| n.len()))
        .chain(cur.histograms.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(8)
        .max(8);
    let mut out = String::new();
    let _ = writeln!(out, "== spp-top (window {dt:.1}s) ==");
    if !cur.counters.is_empty() {
        out.push_str("-- counters (total / rate per s) --\n");
        for (name, v) in &cur.counters {
            let delta = v.saturating_sub(prev_counter(name));
            let _ = writeln!(
                out,
                "  {name:<width$}  {v:>14}  {:>12.1}/s",
                delta as f64 / dt
            );
        }
    }
    if !cur.gauges.is_empty() {
        out.push_str("-- gauges (last / max) --\n");
        for (name, g) in &cur.gauges {
            let _ = writeln!(out, "  {name:<width$}  {:>14} / {}", g.value, g.max);
        }
    }
    if !cur.histograms.is_empty() {
        out.push_str("-- histograms (count / new / p50 / p99 / p999 / max) --\n");
        for (name, h) in &cur.histograms {
            let fresh = h.count.saturating_sub(prev_hist_count(name));
            let _ = writeln!(
                out,
                "  {name:<width$}  {:>10} / {:>8} / {:>10} / {:>10} / {:>10} / {:>10}",
                h.count,
                fresh,
                h.quantile(0.5),
                h.quantile(0.99),
                h.quantile(0.999),
                h.max
            );
        }
    }
    out
}

/// Starts the periodic snapshot thread (at most one per process).
/// Returns whether this call started it. Periods are clamped to at
/// least 10 ms so a typo cannot busy-spin the observer.
pub fn start_snapshotter(period_secs: f64) -> bool {
    if !period_secs.is_finite() || period_secs <= 0.0 {
        return false;
    }
    if STARTED.set(()).is_err() {
        return false;
    }
    let period = std::time::Duration::from_secs_f64(period_secs.max(0.01));
    // A detached observer is the point: it must outlive no one and own
    // nothing. Bounded to one thread by the STARTED flag above, it only
    // reads (snapshot + render + eprint) and exits with the process.
    // spp-lint: allow(l4-unbounded): one read-only observer thread gated by the STARTED flag; not a data-parallel fan-out, so the pool's worker budget does not apply
    std::thread::spawn(move || {
        let mut prev: Option<MetricsSnapshot> = None;
        let mut last_ns = crate::span::clock_ns();
        loop {
            std::thread::sleep(period);
            if !metrics::enabled() {
                continue;
            }
            let now_ns = crate::span::clock_ns();
            let dt = (now_ns.saturating_sub(last_ns)) as f64 / 1e9;
            last_ns = now_ns;
            let cur = metrics::snapshot();
            eprint!("{}", render_dashboard(prev.as_ref(), &cur, dt));
            prev = Some(cur);
        }
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{GaugeValue, HistogramSnapshot};

    fn snap(counter: u64, hist_count: u64) -> MetricsSnapshot {
        let mut h = HistogramSnapshot::default();
        h.buckets[crate::metrics::bucket_of(100)] = hist_count;
        h.count = hist_count;
        h.sum = 100 * hist_count;
        h.max = 100;
        MetricsSnapshot {
            counters: vec![("test.dash.counter".to_string(), counter)],
            gauges: vec![(
                "test.dash.gauge".to_string(),
                GaugeValue { value: 3, max: 9 },
            )],
            histograms: vec![("test.dash.hist".to_string(), h)],
        }
    }

    #[test]
    fn dashboard_rates_are_window_deltas() {
        let prev = snap(100, 10);
        let cur = snap(350, 30);
        let s = render_dashboard(Some(&prev), &cur, 5.0);
        assert!(s.contains("spp-top"), "{s}");
        // (350 - 100) / 5s = 50/s.
        assert!(s.contains("50.0/s"), "{s}");
        // Gauge last/max and histogram fresh-count column.
        assert!(s.contains("3 / 9"), "{s}");
        assert!(s.contains("20 /"), "{s}");
    }

    #[test]
    fn dashboard_without_prev_uses_totals() {
        let cur = snap(200, 4);
        let s = render_dashboard(None, &cur, 2.0);
        assert!(s.contains("100.0/s"), "{s}");
        // Sketch-resolution quantile of the 100-valued samples: exact
        // bucket floor for a two-wide sub-bucket.
        assert!(
            s.contains(&format!(
                "{}",
                crate::metrics::bucket_floor(crate::metrics::bucket_of(100))
            )),
            "{s}"
        );
    }

    #[test]
    fn zero_elapsed_does_not_divide_by_zero() {
        let cur = snap(5, 0);
        let s = render_dashboard(None, &cur, 0.0);
        assert!(s.contains("5.0/s"), "{s}");
    }
}
