//! Global metrics registry: named counters, gauges, and log2-bucket
//! histograms with a lock-free hot path.
//!
//! Registration (`counter("name")` etc.) takes a mutex and deduplicates
//! by name; the returned handle is a plain index, `Copy`, and cheap to
//! cache in a `OnceLock`. Recording goes through a thread-local *shard*
//! of relaxed atomics — no lock, no contention with other threads — and
//! [`snapshot`] merges all shards in registration index order, so the
//! merged totals are independent of thread scheduling. Shards are pooled
//! on a free list: when a scoped pool worker exits, its shard index is
//! recycled by the next thread rather than growing the table (counts are
//! cumulative, so reuse cannot lose or double-count events).
//!
//! Capacity overflow (more names than the fixed tables hold) degrades to
//! dead no-op handles instead of failing — telemetry must never take the
//! computation down (lint L1).

use spp_sync::{AtomicBool, AtomicU64, Mutex};
use std::sync::{Arc, OnceLock};

/// Maximum distinct counters (comm byte matrices need k² of them).
pub const MAX_COUNTERS: usize = 256;
/// Maximum distinct gauges.
pub const MAX_GAUGES: usize = 64;
/// Maximum distinct histograms (spans auto-register one per name).
pub const MAX_HISTOGRAMS: usize = 96;
/// Buckets per histogram. Since the sketch layer (DESIGN.md §15) the
/// registry histograms share the [`crate::sketch`] bucket layout —
/// exact unit buckets below 16, then 16 linear sub-buckets per octave —
/// so snapshot quantiles carry the sketch's fixed relative-error bound
/// ([`crate::sketch::REL_ERROR`]) instead of log2 resolution.
pub const HISTOGRAM_BUCKETS: usize = crate::sketch::NUM_BUCKETS;

/// Index marking a dead (no-op) handle.
const DEAD: usize = usize::MAX;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Handles returned after a name-table overflow (observable via
/// [`dropped_handles`] and the `telemetry.dropped_handles` synthetic
/// counter in [`snapshot`]), so silent degradation is at least visible.
static DROPPED_HANDLES: AtomicU64 = AtomicU64::new(0);

/// Whether telemetry recording is on. One relaxed load — this is the
/// entire disabled-path cost of every recording call.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load_relaxed() // spp-sync: relaxed(independent on/off flag; readers need no ordering with recorded data)
}

/// Turns recording on or off. [`crate::export::init_from_env`] calls
/// this from the `SPP_TRACE` environment knob; tests may toggle it
/// directly.
pub fn set_enabled(on: bool) {
    ENABLED.store_relaxed(on); // spp-sync: relaxed(independent on/off flag; publishes no other data)
}

/// How many metric registrations have returned dead handles because a
/// name table was full.
pub fn dropped_handles() -> u64 {
    DROPPED_HANDLES.load_relaxed() // spp-sync: relaxed(monotonic tally; no ordering dependents)
}

/// One thread's slice of every metric, all relaxed atomics.
struct Shard {
    counters: Box<[AtomicU64]>,
    hist_counts: Box<[AtomicU64]>,
    hist_n: Box<[AtomicU64]>,
    hist_sum: Box<[AtomicU64]>,
    hist_max: Box<[AtomicU64]>,
}

fn zeroes(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

impl Shard {
    fn new() -> Self {
        Self {
            counters: zeroes(MAX_COUNTERS),
            hist_counts: zeroes(MAX_HISTOGRAMS * HISTOGRAM_BUCKETS),
            hist_n: zeroes(MAX_HISTOGRAMS),
            hist_sum: zeroes(MAX_HISTOGRAMS),
            hist_max: zeroes(MAX_HISTOGRAMS),
        }
    }
}

struct GaugeSlot {
    value: AtomicU64,
    max: AtomicU64,
}

#[derive(Default)]
struct Names {
    counters: Vec<String>,
    gauges: Vec<String>,
    histograms: Vec<String>,
}

#[derive(Default)]
struct ShardTable {
    shards: Vec<Arc<Shard>>,
    free: Vec<usize>,
}

struct Registry {
    names: Mutex<Names>,
    shards: Mutex<ShardTable>,
    gauges: Box<[GaugeSlot]>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        names: Mutex::new(Names::default()),
        shards: Mutex::new(ShardTable::default()),
        gauges: (0..MAX_GAUGES)
            .map(|_| GaugeSlot {
                value: AtomicU64::new(0),
                max: AtomicU64::new(0),
            })
            .collect(),
    })
}

/// The calling thread's shard plus its table index (returned to the
/// free list on thread exit).
struct ShardHandle {
    shard: Arc<Shard>,
    index: usize,
}

impl ShardHandle {
    fn acquire() -> Self {
        let mut table = registry().shards.lock();
        // Reuse the *smallest* free index, not the most recently freed:
        // shard assignment becomes a pure function of acquire/release
        // order, which the model checker needs for decision replay (and
        // it costs nothing — the free list is tiny).
        let free_pos = table
            .free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &idx)| idx)
            .map(|(pos, _)| pos);
        if let Some(pos) = free_pos {
            let index = table.free.swap_remove(pos);
            let shard = Arc::clone(&table.shards[index]);
            Self { shard, index }
        } else {
            let shard = Arc::new(Shard::new());
            table.shards.push(Arc::clone(&shard));
            let index = table.shards.len() - 1;
            Self { shard, index }
        }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        registry().shards.lock().free.push(self.index);
    }
}

thread_local! {
    static SHARD: ShardHandle = ShardHandle::acquire();
}

fn register(names: &mut Vec<String>, cap: usize, name: &str) -> usize {
    if let Some(i) = names.iter().position(|n| n == name) {
        return i;
    }
    if names.len() >= cap {
        DROPPED_HANDLES.fetch_add_relaxed(1); // spp-sync: relaxed(monotonic tally; no ordering dependents)
        return DEAD;
    }
    names.push(name.to_string());
    names.len() - 1
}

/// A monotonically increasing event count.
#[derive(Clone, Copy, Debug)]
pub struct Counter(usize);

/// Registers (or looks up) the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut names = registry().names.lock();
    Counter(register(&mut names.counters, MAX_COUNTERS, name))
}

impl Counter {
    /// Adds `v`. No-op (one relaxed load) while telemetry is disabled.
    #[inline]
    pub fn add(&self, v: u64) {
        if !enabled() || self.0 == DEAD {
            return;
        }
        let i = self.0;
        // try_with: silently drop events arriving during TLS teardown.
        let _ = SHARD.try_with(|s| s.shard.counters[i].fetch_add_relaxed(v)); // spp-sync: relaxed(per-thread shard; merges sum all shards, no cross-shard ordering)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current merged total across all shards (live and recycled).
    pub fn value(&self) -> u64 {
        if self.0 == DEAD {
            return 0;
        }
        let table = registry().shards.lock();
        table
            .shards
            .iter()
            .map(|s| s.counters[self.0].load_relaxed()) // spp-sync: relaxed(statistical merge; counts are monotonic, staleness only under-reports)
            .sum()
    }
}

/// A last-written value with a high-water mark. Gauges write a single
/// global slot (set is a point-in-time observation, not an accumulation,
/// so sharding would have nothing to merge).
#[derive(Clone, Copy, Debug)]
pub struct Gauge(usize);

/// Registers (or looks up) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut names = registry().names.lock();
    Gauge(register(&mut names.gauges, MAX_GAUGES, name))
}

impl Gauge {
    /// Records the current value (and raises the high-water mark).
    #[inline]
    pub fn set(&self, v: u64) {
        if !enabled() || self.0 == DEAD {
            return;
        }
        let slot = &registry().gauges[self.0];
        slot.value.store_relaxed(v); // spp-sync: relaxed(point-in-time observation; last-writer-wins is the semantics)
        slot.max.fetch_max_relaxed(v); // spp-sync: relaxed(monotonic high-water mark; RMW cannot lose updates)
    }
}

/// A fixed-bucket log2 histogram of `u64` samples (latencies in ns,
/// sizes in rows/bytes — unit is the caller's convention, named in the
/// metric).
#[derive(Clone, Copy, Debug)]
pub struct Histogram(usize);

/// Registers (or looks up) the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut names = registry().names.lock();
    Histogram(register(&mut names.histograms, MAX_HISTOGRAMS, name))
}

impl Histogram {
    /// An inert handle that records nothing (used by disabled spans).
    pub(crate) fn dead() -> Self {
        Histogram(DEAD)
    }

    /// Records one sample. No-op while telemetry is disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() || self.0 == DEAD {
            return;
        }
        let h = self.0;
        let b = bucket_of(v);
        let _ = SHARD.try_with(|s| {
            let sh = &s.shard;
            sh.hist_counts[h * HISTOGRAM_BUCKETS + b].fetch_add_relaxed(1); // spp-sync: relaxed(per-thread shard; merge tolerates field skew)
            sh.hist_n[h].fetch_add_relaxed(1); // spp-sync: relaxed(per-thread shard; merge tolerates field skew)
            sh.hist_sum[h].fetch_add_relaxed(v); // spp-sync: relaxed(per-thread shard; merge tolerates field skew)
            sh.hist_max[h].fetch_max_relaxed(v); // spp-sync: relaxed(monotonic high-water mark; RMW cannot lose updates)
        });
    }

    /// Starts a timer that records elapsed nanoseconds into this
    /// histogram when dropped. Inert while disabled.
    #[inline]
    pub fn time(&self) -> HistTimer {
        HistTimer {
            hist: *self,
            start: (enabled() && self.0 != DEAD).then(crate::span::clock_ns),
        }
    }

    /// Merged snapshot across all shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        if self.0 == DEAD {
            return snap;
        }
        let table = registry().shards.lock();
        merge_histogram(&table, self.0, &mut snap);
        snap
    }
}

/// Guard returned by [`Histogram::time`].
#[must_use = "the timer records when the guard is dropped"]
pub struct HistTimer {
    hist: Histogram,
    start: Option<u64>,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist
                .observe(crate::span::clock_ns().saturating_sub(start));
        }
    }
}

/// Bucket index for sample `v` (the shared sketch layout; see
/// [`crate::sketch::sketch_bucket_of`]).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    crate::sketch::sketch_bucket_of(v)
}

/// Smallest sample landing in bucket `b` (inverse of [`bucket_of`]).
#[inline]
pub fn bucket_floor(b: usize) -> u64 {
    crate::sketch::sketch_bucket_floor(b)
}

/// Merged state of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_of`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower edge of the bucket holding the `q`-quantile observation
    /// (0 when empty). Resolution is the log2 bucket width.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(b);
            }
        }
        bucket_floor(HISTOGRAM_BUCKETS - 1)
    }
}

/// A gauge's merged state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeValue {
    /// Last value written.
    pub value: u64,
    /// High-water mark.
    pub max: u64,
}

/// Point-in-time merged view of every registered metric, in
/// registration index order.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, merged total)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, GaugeValue)>,
    /// `(name, merged histogram)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

fn merge_histogram(table: &ShardTable, h: usize, snap: &mut HistogramSnapshot) {
    for s in &table.shards {
        let counts = &s.hist_counts[h * HISTOGRAM_BUCKETS..(h + 1) * HISTOGRAM_BUCKETS];
        for (bucket, c) in snap.buckets.iter_mut().zip(counts) {
            *bucket += c.load_relaxed(); // spp-sync: relaxed(statistical merge)
        }
        snap.count += s.hist_n[h].load_relaxed(); // spp-sync: relaxed(statistical merge; staleness only under-reports)
        snap.sum += s.hist_sum[h].load_relaxed(); // spp-sync: relaxed(statistical merge; staleness only under-reports)
        snap.max = snap.max.max(s.hist_max[h].load_relaxed()); // spp-sync: relaxed(statistical merge; staleness only under-reports)
    }
}

/// Merges every shard (in table index order) into one snapshot.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let names = reg.names.lock();
    let table = reg.shards.lock();
    let mut counters: Vec<(String, u64)> = names
        .counters
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let total: u64 = table
                .shards
                .iter()
                .map(|s| s.counters[i].load_relaxed()) // spp-sync: relaxed(statistical merge; staleness only under-reports)
                .sum();
            (name.clone(), total)
        })
        .collect();
    // Surface registration overflow in exports without consuming a
    // (possibly exhausted) counter slot.
    let dropped = dropped_handles();
    if dropped > 0 {
        counters.push(("telemetry.dropped_handles".to_string(), dropped));
    }
    let gauges = names
        .gauges
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let slot = &reg.gauges[i];
            (
                name.clone(),
                GaugeValue {
                    value: slot.value.load_relaxed(), // spp-sync: relaxed(point-in-time observation)
                    max: slot.max.load_relaxed(), // spp-sync: relaxed(monotonic high-water mark)
                },
            )
        })
        .collect();
    let histograms = names
        .histograms
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut snap = HistogramSnapshot::default();
            merge_histogram(&table, i, &mut snap);
            (name.clone(), snap)
        })
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Serializes tests that toggle the global enabled flag or inspect the
/// shard table — they would race under the parallel test runner.
#[cfg(test)]
pub(crate) fn test_lock() -> spp_sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_follow_the_sketch_layout() {
        // Exact below 16, then 16 linear sub-buckets per octave.
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
        }
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(17), 17);
        assert_eq!(bucket_of(32), 32);
        assert_eq!(bucket_of(33), 32); // two-wide sub-buckets in [32, 64)
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // floor/bucket round-trip: floor(b) is the smallest v in b.
        for b in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_floor(b)), b);
            assert_eq!(bucket_of(bucket_floor(b) - 1), b - 1);
        }
    }

    #[test]
    fn counter_roundtrip_and_dedupe() {
        let _g = test_lock();
        set_enabled(true);
        let a = counter("test.metrics.counter_roundtrip");
        let b = counter("test.metrics.counter_roundtrip");
        let before = a.value();
        a.add(3);
        b.inc();
        assert_eq!(a.value(), before + 4);
        set_enabled(false);
        a.inc(); // disabled: must not record
        assert_eq!(a.value(), before + 4);
    }

    #[test]
    fn histogram_merges_across_threads() {
        let _g = test_lock();
        set_enabled(true);
        let h = histogram("test.metrics.hist_merge");
        let base = h.snapshot();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in [0u64, 1, 7, 1000] {
                        h.observe(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count - base.count, 16);
        assert_eq!(snap.sum - base.sum, 4 * (1 + 7 + 1000));
        assert_eq!(snap.max.max(base.max), snap.max);
        assert_eq!(snap.buckets[bucket_of(7)] - base.buckets[bucket_of(7)], 4);
        set_enabled(false);
    }

    #[test]
    fn shard_indices_are_recycled() {
        let _g = test_lock();
        set_enabled(true);
        let c = counter("test.metrics.shard_recycle");
        let shards_before = registry().shards.lock().shards.len();
        for _ in 0..8 {
            std::thread::scope(|s| {
                s.spawn(|| c.inc());
            });
        }
        let shards_after = registry().shards.lock().shards.len();
        // Sequential short-lived threads reuse freed shard slots instead
        // of growing the table once per thread.
        assert!(
            shards_after <= shards_before + 2,
            "{shards_before} -> {shards_after}"
        );
        set_enabled(false);
    }

    #[test]
    fn quantiles_track_bucket_floors() {
        let mut snap = HistogramSnapshot::default();
        // 50 samples of 8 (bucket 4), 50 samples of 64 (bucket 7).
        snap.buckets[bucket_of(8)] = 50;
        snap.buckets[bucket_of(64)] = 50;
        snap.count = 100;
        snap.sum = 50 * 8 + 50 * 64;
        snap.max = 64;
        assert_eq!(snap.quantile(0.25), bucket_floor(bucket_of(8)));
        assert_eq!(snap.quantile(0.95), bucket_floor(bucket_of(64)));
        assert!((snap.mean() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn overflow_returns_dead_handles() {
        // Dead handles record nothing and never panic.
        let dead = Histogram::dead();
        dead.observe(5);
        assert_eq!(dead.snapshot().count, 0);
    }

    #[test]
    fn overflow_is_counted_as_dropped_handles() {
        let _g = test_lock();
        // Exercise the mechanism against a local name table so the
        // global registries stay usable for other tests.
        let mut names = vec!["a".to_string(), "b".to_string()];
        let before = dropped_handles();
        assert_eq!(register(&mut names, 2, "a"), 0); // dedup: no drop
        assert_eq!(register(&mut names, 2, "c"), DEAD);
        assert_eq!(register(&mut names, 2, "d"), DEAD);
        assert!(dropped_handles() >= before + 2);
        // Snapshots surface the tally as a synthetic counter.
        let snap = snapshot();
        let entry = snap
            .counters
            .iter()
            .find(|(n, _)| n == "telemetry.dropped_handles");
        assert!(entry.is_some_and(|(_, v)| *v >= 2), "{:?}", snap.counters);
    }
}
