//! Attribution layer: structured cache and communication accounting.
//!
//! Counters tell you *how much*; attribution tells you *where*. This
//! module defines the two structured report types the perf benches and
//! trace exporters share (DESIGN.md §15):
//!
//! - [`CacheReport`] — per-tier cache accounting for one configuration:
//!   hits / misses / evictions / insertions / bytes for every tier
//!   (static VIP cache, LRU overlay, remote fetch), tagged with the
//!   quantization scheme in effect and carrying a latency
//!   [`QuantileSketch`].
//! - [`CommReport`] — a windowed communication-matrix view: one square
//!   `machines × machines` byte matrix per window (an epoch of
//!   training, a slice of serving virtual time), `matrix[src][dst]` =
//!   bytes sent from machine `src` to machine `dst` in that window.
//!
//! Reports are built from *deterministic* per-run accounting (never
//! from racy counter snapshots), so their canonical JSON renderings are
//! bit-identical across runs and worker counts. Harnesses embed the
//! JSON in `BENCH_*.json` and [`publish`] them into a global registry
//! that the Chrome-trace exporter appends as a top-level `attrib`
//! section — `cargo xtask validate-trace` checks both against this
//! schema.

use crate::sketch::QuantileSketch;
use spp_sync::Mutex;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Accounting for one cache tier.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Tier name (`static`, `overlay`, `remote`).
    pub tier: String,
    /// Lookups this tier answered.
    pub hits: u64,
    /// Lookups this tier saw but could not answer.
    pub misses: u64,
    /// Entries evicted from this tier.
    pub evictions: u64,
    /// Entries admitted into this tier.
    pub insertions: u64,
    /// Bytes served by (or, for `remote`, transferred through) this
    /// tier.
    pub bytes: u64,
}

impl TierStats {
    /// A named tier with all counters zero.
    #[must_use]
    pub fn named(tier: &str) -> Self {
        Self {
            tier: tier.to_string(),
            ..Self::default()
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"tier\": \"{}\", \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"insertions\": {}, \"bytes\": {}}}",
            self.tier, self.hits, self.misses, self.evictions, self.insertions, self.bytes
        )
    }
}

/// Per-tier cache accounting for one run/configuration.
///
/// Invariant (checked by `cargo xtask validate-trace`): the tier hit
/// counts partition the lookups — `Σ tiers[i].hits == lookups`. The
/// `remote` tier counts every fetch as a hit (the network always
/// answers), so the invariant holds for the usual
/// static → overlay → remote probe order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheReport {
    /// Which run/configuration this report describes.
    pub label: String,
    /// Quantization scheme of the cached/wire rows (`f32`, `f16`, `i8`).
    pub scheme: String,
    /// Non-local lookups classified against the tiers.
    pub lookups: u64,
    /// Local accesses that never consulted a cache.
    pub local: u64,
    /// Per-tier counters, in probe order.
    pub tiers: Vec<TierStats>,
    /// End-to-end latency sketch (nanoseconds).
    pub latency_ns: QuantileSketch,
}

impl CacheReport {
    /// Canonical JSON rendering (single object, tiers in probe order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"label\": \"{}\", \"scheme\": \"{}\", \"lookups\": {}, \"local\": {}, \
             \"tiers\": [",
            self.label, self.scheme, self.lookups, self.local
        );
        for (i, t) in self.tiers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&t.to_json());
        }
        let _ = write!(out, "], \"latency_ns\": {}}}", self.latency_ns.to_json());
        out
    }
}

/// One window of a communication matrix.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommWindow {
    /// Window label (`epoch0`, `t0.25`, ...).
    pub label: String,
    /// Row-major `machines × machines` byte matrix:
    /// `bytes[src * machines + dst]`.
    pub bytes: Vec<u64>,
}

/// A windowed communication-matrix view for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommReport {
    /// Which run/configuration this report describes.
    pub label: String,
    /// Machine count `k`; every window matrix is `k × k`.
    pub machines: usize,
    /// Windows in time order.
    pub windows: Vec<CommWindow>,
}

impl CommReport {
    /// A report with `windows` empty `machines × machines` windows
    /// labelled by `label_fn(window index)`.
    ///
    /// # Panics
    ///
    /// Panics if `machines` is zero.
    #[must_use]
    pub fn with_windows(
        label: &str,
        machines: usize,
        windows: usize,
        label_fn: impl Fn(usize) -> String,
    ) -> Self {
        assert!(machines > 0, "comm matrix needs at least one machine");
        Self {
            label: label.to_string(),
            machines,
            windows: (0..windows)
                .map(|w| CommWindow {
                    label: label_fn(w),
                    bytes: vec![0; machines * machines],
                })
                .collect(),
        }
    }

    /// Adds `bytes` sent `src → dst` in window `w`. Out-of-range
    /// indices are ignored (attribution must never take the run down).
    pub fn record(&mut self, w: usize, src: usize, dst: usize, bytes: u64) {
        if src >= self.machines || dst >= self.machines {
            return;
        }
        if let Some(win) = self.windows.get_mut(w) {
            if let Some(cell) = win.bytes.get_mut(src * self.machines + dst) {
                *cell += bytes;
            }
        }
    }

    /// Total bytes across all windows and machine pairs.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.windows
            .iter()
            .map(|w| w.bytes.iter().sum::<u64>())
            .sum()
    }

    /// Canonical JSON rendering; each window's matrix is emitted as
    /// `machines` rows of `machines` columns (square by construction).
    #[must_use]
    pub fn to_json(&self) -> String {
        let k = self.machines;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"label\": \"{}\", \"machines\": {k}, \"total_bytes\": {}, \"windows\": [",
            self.label,
            self.total_bytes()
        );
        for (wi, w) in self.windows.iter().enumerate() {
            if wi > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"label\": \"{}\", \"bytes\": [", w.label);
            for row in 0..k {
                if row > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                for col in 0..k {
                    if col > 0 {
                        out.push_str(", ");
                    }
                    let cell = w.bytes.get(row * k + col).copied().unwrap_or(0);
                    let _ = write!(out, "{cell}");
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Page-level accounting for one out-of-core feature store
/// (`spp-store`) over one run/configuration.
///
/// Invariants (checked by `cargo xtask validate-trace`):
/// `pages_read == pages_faulted + pages_hit` and
/// `bytes_read == pages_faulted × page_bytes` — a fault loads exactly
/// one page, a hit touches resident bytes only.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreReport {
    /// Which run/configuration this report describes.
    pub label: String,
    /// Backend name (`inram`, `mmap`).
    pub backend: String,
    /// On-disk row precision (`f32`, `f16`, `i8`).
    pub scheme: String,
    /// Rows per page.
    pub page_rows: u64,
    /// Bytes per page.
    pub page_bytes: u64,
    /// Page touches (one per row read).
    pub pages_read: u64,
    /// Touches that missed residency and loaded the page.
    pub pages_faulted: u64,
    /// Touches answered by an already-resident page.
    pub pages_hit: u64,
    /// Bytes loaded from the backing file (faults × page size).
    pub bytes_read: u64,
}

impl StoreReport {
    /// Canonical JSON rendering (single object).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"label\": \"{}\", \"backend\": \"{}\", \"scheme\": \"{}\", \
             \"page_rows\": {}, \"page_bytes\": {}, \"pages_read\": {}, \
             \"pages_faulted\": {}, \"pages_hit\": {}, \"bytes_read\": {}}}",
            self.label,
            self.backend,
            self.scheme,
            self.page_rows,
            self.page_bytes,
            self.pages_read,
            self.pages_faulted,
            self.pages_hit,
            self.bytes_read
        )
    }
}

/// Published attribution reports awaiting export.
#[derive(Default)]
struct AttribRegistry {
    caches: Vec<CacheReport>,
    comms: Vec<CommReport>,
    stores: Vec<StoreReport>,
}

fn registry() -> &'static Mutex<AttribRegistry> {
    static REG: OnceLock<Mutex<AttribRegistry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(AttribRegistry::default()))
}

/// Publishes a cache report for the trace exporters. A later report
/// with the same label replaces the earlier one (re-runs in one
/// process export their final state once).
pub fn publish_cache_report(report: CacheReport) {
    let mut reg = registry().lock();
    if let Some(slot) = reg.caches.iter_mut().find(|c| c.label == report.label) {
        *slot = report;
    } else {
        reg.caches.push(report);
    }
}

/// Publishes a comm report for the trace exporters (same replace-by-
/// label semantics as [`publish_cache_report`]).
pub fn publish_comm_report(report: CommReport) {
    let mut reg = registry().lock();
    if let Some(slot) = reg.comms.iter_mut().find(|c| c.label == report.label) {
        *slot = report;
    } else {
        reg.comms.push(report);
    }
}

/// Publishes a store report for the trace exporters (same replace-by-
/// label semantics as [`publish_cache_report`]).
pub fn publish_store_report(report: StoreReport) {
    let mut reg = registry().lock();
    if let Some(slot) = reg.stores.iter_mut().find(|c| c.label == report.label) {
        *slot = report;
    } else {
        reg.stores.push(report);
    }
}

/// Clears every published report (tests and multi-run harnesses).
pub fn reset_attrib() {
    let mut reg = registry().lock();
    reg.caches.clear();
    reg.comms.clear();
    reg.stores.clear();
}

/// Renders the published reports as the trace exporter's `attrib`
/// section, or `None` when nothing was published.
#[must_use]
pub fn attrib_json() -> Option<String> {
    let reg = registry().lock();
    if reg.caches.is_empty() && reg.comms.is_empty() && reg.stores.is_empty() {
        return None;
    }
    let mut out = String::from("{\"cache\": [");
    for (i, c) in reg.caches.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&c.to_json());
    }
    out.push_str("], \"comm\": [");
    for (i, c) in reg.comms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&c.to_json());
    }
    out.push_str("], \"store\": [");
    for (i, c) in reg.stores.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&c.to_json());
    }
    out.push_str("]}");
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_report_json_partitions_lookups() {
        let mut r = CacheReport {
            label: "demo".into(),
            scheme: "f16".into(),
            lookups: 10,
            local: 3,
            ..CacheReport::default()
        };
        let mut s = TierStats::named("static");
        s.hits = 6;
        s.misses = 4;
        let mut o = TierStats::named("overlay");
        o.hits = 3;
        o.misses = 1;
        let mut f = TierStats::named("remote");
        f.hits = 1;
        f.bytes = 64;
        r.tiers = vec![s, o, f];
        r.latency_ns.observe(100);
        let total: u64 = r.tiers.iter().map(|t| t.hits).sum();
        assert_eq!(total, r.lookups);
        let j = r.to_json();
        assert!(j.contains("\"scheme\": \"f16\""), "{j}");
        assert!(j.contains("\"tier\": \"overlay\""), "{j}");
        assert!(j.contains("\"latency_ns\": {\"count\": 1"), "{j}");
    }

    #[test]
    fn comm_report_records_and_renders_square_matrix() {
        let mut r = CommReport::with_windows("train", 3, 2, |w| format!("epoch{w}"));
        r.record(0, 0, 1, 100);
        r.record(0, 0, 1, 20);
        r.record(1, 2, 0, 7);
        r.record(5, 0, 0, 999); // out-of-range window: ignored
        r.record(0, 9, 0, 999); // out-of-range machine: ignored
        assert_eq!(r.total_bytes(), 127);
        let j = r.to_json();
        assert!(j.contains("\"machines\": 3"), "{j}");
        assert!(
            j.contains("{\"label\": \"epoch0\", \"bytes\": [[0, 120, 0], [0, 0, 0], [0, 0, 0]]}"),
            "{j}"
        );
        assert!(j.contains("[[0, 0, 0], [0, 0, 0], [7, 0, 0]]"), "{j}");
    }

    #[test]
    fn store_report_json_and_invariants() {
        let r = StoreReport {
            label: "vip".into(),
            backend: "mmap".into(),
            scheme: "f16".into(),
            page_rows: 64,
            page_bytes: 4096,
            pages_read: 100,
            pages_faulted: 30,
            pages_hit: 70,
            bytes_read: 30 * 4096,
        };
        assert_eq!(r.pages_read, r.pages_faulted + r.pages_hit);
        assert_eq!(r.bytes_read, r.pages_faulted * r.page_bytes);
        let j = r.to_json();
        assert!(j.contains("\"backend\": \"mmap\""), "{j}");
        assert!(j.contains("\"pages_faulted\": 30"), "{j}");
        assert!(j.contains("\"bytes_read\": 122880"), "{j}");
    }

    #[test]
    fn store_reports_flow_through_registry() {
        let _g = crate::metrics::test_lock();
        reset_attrib();
        publish_store_report(StoreReport {
            label: "s".into(),
            pages_read: 1,
            ..StoreReport::default()
        });
        publish_store_report(StoreReport {
            label: "s".into(),
            pages_read: 5,
            ..StoreReport::default()
        });
        let j = attrib_json().unwrap_or_default();
        assert!(j.contains("\"store\": [{"), "{j}");
        assert!(j.contains("\"pages_read\": 5"), "{j}");
        assert!(!j.contains("\"pages_read\": 1"), "{j}");
        reset_attrib();
        assert!(attrib_json().is_none());
    }

    #[test]
    fn publish_replaces_by_label() {
        // The registry is process-global; serialize with the other
        // tests that publish/reset (export tests share this lock).
        let _g = crate::metrics::test_lock();
        reset_attrib();
        assert!(attrib_json().is_none());
        publish_cache_report(CacheReport {
            label: "a".into(),
            lookups: 1,
            ..CacheReport::default()
        });
        publish_cache_report(CacheReport {
            label: "a".into(),
            lookups: 2,
            ..CacheReport::default()
        });
        publish_comm_report(CommReport::with_windows("c", 2, 1, |_| "w".into()));
        let j = attrib_json().unwrap_or_default();
        assert!(j.contains("\"lookups\": 2"), "{j}");
        assert!(!j.contains("\"lookups\": 1"), "{j}");
        assert!(j.contains("\"machines\": 2"), "{j}");
        reset_attrib();
        assert!(attrib_json().is_none());
    }
}
