//! Scoped spans with monotonic timing, parent/child nesting, and a
//! bounded event ring buffer.
//!
//! A span is a guard: `let _g = span!("core.vip.sweep");` opens it and
//! dropping the guard closes it, recording (a) the duration into an
//! auto-registered histogram of the same name and (b) an [`Event`] into
//! the global ring buffer for the trace exporters. Nesting depth is
//! tracked per thread so exporters can reconstruct the parent/child
//! relationship without span ids.
//!
//! All wall-clock reads go through [`clock_ns`] — nanoseconds since a
//! process-wide anchor — which is the workspace's single sanctioned
//! `Instant` site outside `spp-bench` and the DES virtual clock
//! (lint L6).
//!
//! Simulated time: the DES pipeline models run in *virtual* seconds.
//! [`record_sim_span`] records those on named sim tracks; exporters
//! place them on a separate trace process so wall and virtual time are
//! never mixed on one timeline.

use crate::metrics::{enabled, histogram, Histogram};
use spp_sync::{AtomicU64, Mutex};
use std::borrow::Cow;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::OnceLock;
use std::time::Instant;

/// Ring-buffer capacity; older events are overwritten (and counted as
/// dropped) once the log is full.
pub const EVENT_CAPACITY: usize = 1 << 16;

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first telemetry clock read of the
/// process. The workspace's single wall-clock entry point (lint L6).
#[inline]
pub fn clock_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One closed span (or simulated-span) occurrence.
#[derive(Clone, Debug)]
pub struct Event {
    /// Span name (`crate.component.stage`).
    pub name: Cow<'static, str>,
    /// Wall spans: telemetry thread id. Sim spans: sim track id.
    pub tid: u64,
    /// Start in ns — since the clock anchor (wall) or virtual t=0 (sim).
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Nesting depth on its thread when opened (0 = top level).
    pub depth: u16,
    /// True when recorded via [`record_sim_span`] (virtual time).
    pub sim: bool,
}

#[derive(Default)]
pub(crate) struct EventLog {
    pub(crate) events: VecDeque<Event>,
    pub(crate) dropped: u64,
    /// `(tid, thread name)` for every thread that recorded a span.
    pub(crate) threads: Vec<(u64, String)>,
    /// Sim track names; the track id is the index.
    pub(crate) sim_tracks: Vec<String>,
}

fn log() -> &'static Mutex<EventLog> {
    static LOG: OnceLock<Mutex<EventLog>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(EventLog::default()))
}

pub(crate) fn with_log<R>(f: impl FnOnce(&EventLog) -> R) -> R {
    f(&log().lock())
}

/// Clears the event ring buffer (thread/track registries persist).
pub fn reset_events() {
    let mut l = log().lock();
    l.events.clear();
    l.dropped = 0;
}

/// Events dropped to ring-buffer overwrite so far.
pub fn dropped_events() -> u64 {
    log().lock().dropped
}

/// Clones the current event log, oldest first. Harnesses use this to
/// fold closed spans into per-stage [`crate::sketch::QuantileSketch`]es
/// after a run; bounded by [`EVENT_CAPACITY`], so at most one ring of
/// events is copied.
#[must_use]
pub fn events_snapshot() -> Vec<Event> {
    log().lock().events.iter().cloned().collect()
}

fn push(ev: Event) {
    let mut l = log().lock();
    if l.events.len() >= EVENT_CAPACITY {
        l.events.pop_front();
        l.dropped += 1;
    }
    l.events.push_back(ev);
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn register_tid() -> u64 {
    let tid = NEXT_TID.fetch_add_relaxed(1); // spp-sync: relaxed(unique-id allocation; RMW uniqueness needs no ordering)
    let name = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{tid}"));
    log().lock().threads.push((tid, name));
    tid
}

thread_local! {
    static TID: u64 = register_tid();
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// Guard for an open span; the span closes when this drops. Prefer the
/// [`crate::span!`] macro at call sites.
#[must_use = "the span ends when the guard is dropped"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    tid: u64,
    depth: u16,
    hist: Histogram,
    active: bool,
}

/// Opens a span named `name`. Inert (no clock read, no allocation) while
/// telemetry is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start_ns: 0,
            tid: 0,
            depth: 0,
            hist: Histogram::dead(),
            active: false,
        };
    }
    let tid = TID.try_with(|t| *t).unwrap_or(0);
    let depth = DEPTH
        .try_with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        })
        .unwrap_or(0);
    SpanGuard {
        name,
        start_ns: clock_ns(),
        tid,
        depth,
        hist: histogram(name),
        active: true,
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur = clock_ns().saturating_sub(self.start_ns);
        let _ = DEPTH.try_with(|d| d.set(d.get().saturating_sub(1)));
        if enabled() {
            self.hist.observe(dur);
            push(Event {
                name: Cow::Borrowed(self.name),
                tid: self.tid,
                start_ns: self.start_ns,
                dur_ns: dur,
                depth: self.depth,
                sim: false,
            });
        }
    }
}

/// Registers (or looks up) a simulated-time track — e.g. one per DES
/// resource (`cpu0`, `nic1`) — returning its track id.
pub fn sim_track(name: &str) -> u64 {
    let mut l = log().lock();
    if let Some(i) = l.sim_tracks.iter().position(|n| n == name) {
        return i as u64;
    }
    l.sim_tracks.push(name.to_string());
    (l.sim_tracks.len() - 1) as u64
}

/// Records a span in *virtual* time (seconds) on a sim track. No-op
/// while telemetry is disabled.
pub fn record_sim_span(track: u64, name: impl Into<Cow<'static, str>>, start_s: f64, dur_s: f64) {
    if !enabled() {
        return;
    }
    push(Event {
        name: name.into(),
        tid: track,
        start_ns: (start_s.max(0.0) * 1e9) as u64,
        dur_ns: (dur_s.max(0.0) * 1e9) as u64,
        depth: 0,
        sim: true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{set_enabled, test_lock};

    #[test]
    fn disabled_span_records_nothing() {
        let _g = test_lock();
        set_enabled(false);
        let before = with_log(|l| l.events.len());
        {
            let _g = crate::span!("test.span.disabled");
        }
        assert_eq!(with_log(|l| l.events.len()), before);
    }

    #[test]
    fn nested_spans_carry_depth() {
        let _g = test_lock();
        set_enabled(true);
        {
            let _outer = crate::span!("test.span.outer");
            let _inner = crate::span!("test.span.inner");
        }
        set_enabled(false);
        let (outer_depth, inner_depth) = with_log(|l| {
            let find = |n: &str| l.events.iter().rev().find(|e| e.name == n).map(|e| e.depth);
            (find("test.span.outer"), find("test.span.inner"))
        });
        // Same thread: inner must sit one level below outer.
        let outer = outer_depth.unwrap_or(u16::MAX);
        let inner = inner_depth.unwrap_or(0);
        assert!(inner > outer, "inner {inner} vs outer {outer}");
        // The span histogram recorded the duration too.
        assert!(histogram("test.span.outer").snapshot().count >= 1);
    }

    #[test]
    fn sim_spans_use_virtual_time() {
        let _g = test_lock();
        set_enabled(true);
        let t = sim_track("test-sim-track");
        assert_eq!(t, sim_track("test-sim-track"));
        record_sim_span(t, "test.sim.span", 1.5, 0.25);
        set_enabled(false);
        let ev = with_log(|l| {
            l.events
                .iter()
                .rev()
                .find(|e| e.name == "test.sim.span")
                .cloned()
        });
        let ev = ev.unwrap_or(Event {
            name: Cow::Borrowed(""),
            tid: 0,
            start_ns: 0,
            dur_ns: 0,
            depth: 0,
            sim: false,
        });
        assert!(ev.sim);
        assert_eq!(ev.start_ns, 1_500_000_000);
        assert_eq!(ev.dur_ns, 250_000_000);
    }
}
