//! The canonical stage-name enum for the SALIENT++ pipeline.
//!
//! Appendix D of the paper breaks distributed batch preparation into ten
//! stages; training compute and the gradient all-reduce follow. Both DES
//! models (`spp_runtime::pipeline`, `spp_runtime::systems`) and the
//! telemetry span names draw their labels from this one enum so the
//! stage list cannot drift between the simulator, the traces, and the
//! bench reports.

/// One stage of the Appendix-D pipeline, plus training and all-reduce.
///
/// Discriminants are the array index used by per-stage accumulators
/// ([`PipelineStage::index`]); Appendix-D numbering (1-based, excluding
/// train/all-reduce) is [`PipelineStage::appendix_stage`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum PipelineStage {
    /// 1 — obtain the next sampled minibatch (CPU sampler pool).
    Sample = 0,
    /// 2 — all-to-all of send/receive counts (NIC, metadata).
    CountExchange = 1,
    /// 3 — metadata transfer to the CPU to size tensors (copy engine).
    MetaToHost = 2,
    /// 4 — all-to-all of requested-node lists (NIC, 4 B/vertex).
    RequestExchange = 3,
    /// 5 — map global→local ids and D2H the request lists (copy).
    MapD2h = 4,
    /// 6 — background CPU thread: masked selection + CPU-side slicing.
    HostSlice = 5,
    /// 7 — host-to-device of the stage-6 output (copy).
    H2d = 6,
    /// 8 — GPU-side slicing of GPU-resident features and combine (GPU).
    GpuSlice = 7,
    /// 9 — all-to-all of the feature payloads (NIC).
    FeatureExchange = 8,
    /// 10 — combine received features and permute to MFG order (GPU).
    CombinePermute = 9,
    /// Training computation (forward + backward).
    Train = 10,
    /// Gradient all-reduce.
    AllReduce = 11,
}

impl PipelineStage {
    /// Number of stages (ten pipeline stages + train + all-reduce).
    pub const COUNT: usize = 12;

    /// Every stage, in pipeline order.
    pub const ALL: [PipelineStage; PipelineStage::COUNT] = [
        PipelineStage::Sample,
        PipelineStage::CountExchange,
        PipelineStage::MetaToHost,
        PipelineStage::RequestExchange,
        PipelineStage::MapD2h,
        PipelineStage::HostSlice,
        PipelineStage::H2d,
        PipelineStage::GpuSlice,
        PipelineStage::FeatureExchange,
        PipelineStage::CombinePermute,
        PipelineStage::Train,
        PipelineStage::AllReduce,
    ];

    /// Dense array index, `0..COUNT`, in pipeline order.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stage at array index `i`.
    pub fn from_index(i: usize) -> Option<PipelineStage> {
        PipelineStage::ALL.get(i).copied()
    }

    /// Appendix-D stage number (1..=10); `None` for train/all-reduce.
    pub fn appendix_stage(self) -> Option<usize> {
        match self {
            PipelineStage::Train | PipelineStage::AllReduce => None,
            s => Some(s.index() + 1),
        }
    }

    /// Full telemetry span name (`crate.component.stage` convention).
    pub fn label(self) -> &'static str {
        match self {
            PipelineStage::Sample => "pipeline.stage1.sample",
            PipelineStage::CountExchange => "pipeline.stage2.counts",
            PipelineStage::MetaToHost => "pipeline.stage3.meta",
            PipelineStage::RequestExchange => "pipeline.stage4.requests",
            PipelineStage::MapD2h => "pipeline.stage5.map",
            PipelineStage::HostSlice => "pipeline.stage6.slice",
            PipelineStage::H2d => "pipeline.stage7.h2d",
            PipelineStage::GpuSlice => "pipeline.stage8.gpu_slice",
            PipelineStage::FeatureExchange => "pipeline.stage9.comm",
            PipelineStage::CombinePermute => "pipeline.stage10.permute",
            PipelineStage::Train => "pipeline.train",
            PipelineStage::AllReduce => "pipeline.allreduce",
        }
    }

    /// Short label for DES task tags and Figure-1-style lane charts.
    pub fn short(self) -> &'static str {
        match self {
            PipelineStage::Sample => "sample",
            PipelineStage::CountExchange => "counts",
            PipelineStage::MetaToHost => "meta",
            PipelineStage::RequestExchange => "requests",
            PipelineStage::MapD2h => "map",
            PipelineStage::HostSlice => "slice",
            PipelineStage::H2d => "h2d",
            PipelineStage::GpuSlice => "gpu_slice",
            PipelineStage::FeatureExchange => "comm",
            PipelineStage::CombinePermute => "permute",
            PipelineStage::Train => "train",
            PipelineStage::AllReduce => "allreduce",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::PipelineStage;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, s) in PipelineStage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(PipelineStage::from_index(i), Some(*s));
        }
        assert_eq!(PipelineStage::from_index(PipelineStage::COUNT), None);
    }

    #[test]
    fn appendix_numbering_covers_one_through_ten() {
        let nums: Vec<usize> = PipelineStage::ALL
            .iter()
            .filter_map(|s| s.appendix_stage())
            .collect();
        assert_eq!(nums, (1..=10).collect::<Vec<_>>());
        assert_eq!(PipelineStage::Train.appendix_stage(), None);
        assert_eq!(PipelineStage::AllReduce.appendix_stage(), None);
    }

    #[test]
    fn labels_are_unique_and_follow_convention() {
        let labels: Vec<&str> = PipelineStage::ALL.iter().map(|s| s.label()).collect();
        let shorts: Vec<&str> = PipelineStage::ALL.iter().map(|s| s.short()).collect();
        for (i, l) in labels.iter().enumerate() {
            assert!(l.starts_with("pipeline."), "{l}");
            assert!(!labels[..i].contains(l), "duplicate label {l}");
            assert!(!shorts[..i].contains(&shorts[i]), "duplicate short");
        }
        for s in PipelineStage::ALL {
            if let Some(n) = s.appendix_stage() {
                assert!(s.label().contains(&format!("stage{n}.")), "{}", s.label());
            }
        }
    }
}
