//! Deterministic, mergeable quantile sketches (HDR-style).
//!
//! A [`QuantileSketch`] is a fixed-layout histogram over `u64` samples:
//! values below [`SUB_BUCKETS`] land in exact unit buckets, and every
//! larger octave `[2^k, 2^(k+1))` is split into [`SUB_BUCKETS`] linear
//! sub-buckets. The layout is a pure function of the value — no
//! adaptive resizing, no randomness — which buys three properties the
//! workspace's §9 determinism contract needs:
//!
//! 1. **Fixed relative error.** A sub-bucket in octave `k` is
//!    `2^(k-SUB_BITS)` wide while every value in it is at least `2^k`,
//!    so the reported bucket floor under-reports any sample (and any
//!    quantile) by strictly less than [`REL_ERROR`] = 1/16 ≈ 6.25 %:
//!    `floor ≤ v < floor · (1 + REL_ERROR)`.
//! 2. **Exact merges.** Two sketches over the same layout merge by
//!    element-wise addition of bucket counts — the merge of sketches
//!    equals the sketch of the concatenated streams *exactly*, so
//!    per-worker or per-replica sketches folded in registration
//!    (index) order are bit-identical to a single-threaded sketch of
//!    the whole stream, independent of how samples were split.
//! 3. **Canonical rendering.** [`QuantileSketch::to_json`] emits the
//!    sparse bucket list in index order with integer counts only, so
//!    equal sketches render byte-identical JSON (the bench
//!    determinism gates compare these strings directly).
//!
//! Quantiles are reported as the *lower edge* of the bucket containing
//! the ceil-rank observation: deterministic, integral, and never above
//! the true order statistic. `p50/p99/p999` in bench reports and the
//! live snapshot dashboard all come from this type (DESIGN.md §15).

use std::fmt::Write as _;

/// log2 of the number of linear sub-buckets per octave.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave (and the exact-bucket range `0..16`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total buckets: 16 exact unit buckets for `0..16`, then 16 linear
/// sub-buckets for each octave `[2^k, 2^(k+1))`, `k = 4..=63`.
pub const NUM_BUCKETS: usize = SUB_BUCKETS * (64 - SUB_BITS as usize + 1);
/// Upper bound on the relative error of any reported quantile:
/// `floor ≤ v < floor * (1 + REL_ERROR)`.
pub const REL_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

/// Bucket index for sample `v` (total order, exact below
/// [`SUB_BUCKETS`]).
#[inline]
#[must_use]
pub fn sketch_bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        // Octave k = floor(log2 v) >= SUB_BITS; the top SUB_BITS bits
        // below the leading one select the linear sub-bucket.
        let k = 63 - v.leading_zeros();
        let octave_base = (k - SUB_BITS + 1) as usize * SUB_BUCKETS;
        let sub = ((v >> (k - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        octave_base + sub
    }
}

/// Smallest sample landing in bucket `i` (inverse of
/// [`sketch_bucket_of`]).
#[inline]
#[must_use]
pub fn sketch_bucket_floor(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let octave = (i / SUB_BUCKETS) as u32 + SUB_BITS - 1;
        let sub = (i % SUB_BUCKETS) as u64;
        (1u64 << octave) + (sub << (octave - SUB_BITS))
    }
}

/// A deterministic, mergeable quantile sketch (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: Box<[u64]>,
    count: u64,
    /// u128: `u64::MAX` samples must not overflow the running sum.
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0u64; NUM_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.counts[sketch_bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration in seconds as integer nanoseconds (negative
    /// durations clamp to zero).
    #[inline]
    pub fn observe_secs(&mut self, secs: f64) {
        self.observe((secs.max(0.0) * 1e9) as u64);
    }

    /// Folds `other` into `self`. The merge is exact: the result equals
    /// the sketch of both streams concatenated, regardless of how the
    /// samples were split or in which order sketches are folded.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower edge of the bucket holding the `q`-quantile observation
    /// (0 when empty). Never above the true order statistic, and within
    /// [`REL_ERROR`] of it relatively.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The min is exact and lives in this bucket's range, so
                // it is a tighter (still never-overestimating) floor.
                return sketch_bucket_floor(i).max(self.min);
            }
        }
        sketch_bucket_floor(NUM_BUCKETS - 1)
    }

    /// [`Self::quantile`] converted from nanoseconds to seconds.
    #[must_use]
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1e9
    }

    /// Per-bucket counts, sparse: `(bucket index, count)` for every
    /// non-empty bucket, in index order.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Canonical single-line JSON rendering: totals, the standard
    /// p50/p90/p99/p999 quantiles, and the sparse bucket list in index
    /// order. Equal sketches render byte-identical strings; the sum of
    /// the bucket counts always equals `count` (checked by
    /// `cargo xtask validate-trace`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        );
        for (n, (i, c)) in self.nonzero_buckets().into_iter().enumerate() {
            if n > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{i}, {c}]");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_roundtrips() {
        // Exact range.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(sketch_bucket_of(v), v as usize);
            assert_eq!(sketch_bucket_floor(v as usize), v);
        }
        // Every bucket's floor maps back to that bucket, and floors are
        // strictly increasing.
        for i in 0..NUM_BUCKETS {
            assert_eq!(sketch_bucket_of(sketch_bucket_floor(i)), i, "bucket {i}");
            if i > 0 {
                assert!(sketch_bucket_floor(i) > sketch_bucket_floor(i - 1));
            }
        }
        // One below a floor lands in the previous bucket.
        for i in 1..NUM_BUCKETS {
            assert_eq!(sketch_bucket_of(sketch_bucket_floor(i) - 1), i - 1);
        }
        assert_eq!(sketch_bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_bound_holds_per_bucket() {
        for i in SUB_BUCKETS..NUM_BUCKETS - 1 {
            let lo = sketch_bucket_floor(i);
            let hi = sketch_bucket_floor(i + 1);
            let width = (hi - lo) as f64;
            assert!(
                width / lo as f64 <= REL_ERROR + 1e-12,
                "bucket {i}: width {width} floor {lo}"
            );
        }
    }

    #[test]
    fn zero_observations() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.sum(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_observation_is_exactly_recovered() {
        for v in [0u64, 1, 15, 16, 17, 1000, u64::MAX] {
            let mut s = QuantileSketch::new();
            s.observe(v);
            assert_eq!(s.count(), 1);
            assert_eq!(s.min(), v);
            assert_eq!(s.max(), v);
            // min tightening makes single-sample quantiles exact.
            assert_eq!(s.quantile(0.0), v);
            assert_eq!(s.quantile(0.5), v);
            assert_eq!(s.quantile(1.0), v);
        }
    }

    #[test]
    fn u64_max_saturates_nothing() {
        let mut s = QuantileSketch::new();
        s.observe(u64::MAX);
        s.observe(u64::MAX);
        assert_eq!(s.sum(), 2 * u128::from(u64::MAX));
        assert_eq!(s.max(), u64::MAX);
        // Both samples sit in the last bucket; min-tightening recovers
        // the exact value rather than the bucket floor.
        assert_eq!(s.nonzero_buckets(), vec![(NUM_BUCKETS - 1, 2)]);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn bucket_boundary_values_are_separated() {
        // 16 and 17 are distinct buckets (exact units end at 16, but
        // octave 4 has unit-wide sub-buckets); 2^20 and 2^20 - 1 are
        // distinct octaves.
        let mut s = QuantileSketch::new();
        for v in [16u64, 17, (1 << 20) - 1, 1 << 20] {
            s.observe(v);
        }
        assert_eq!(s.nonzero_buckets().len(), 4);
        assert_eq!(s.quantile(0.25), 16);
        assert_eq!(s.quantile(0.5), 17);
    }

    #[test]
    fn merge_of_empty_is_identity_both_ways() {
        let mut s = QuantileSketch::new();
        s.observe(42);
        s.observe(7);
        let before = s.clone();
        s.merge(&QuantileSketch::new());
        assert_eq!(s, before);
        let mut e = QuantileSketch::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn merge_equals_whole_stream_bitwise() {
        let vals: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9e37).rotate_left(7))
            .collect();
        let mut whole = QuantileSketch::new();
        for &v in &vals {
            whole.observe(v);
        }
        // Split three ways, merge in a different order than recorded.
        let mut parts = [
            QuantileSketch::new(),
            QuantileSketch::new(),
            QuantileSketch::new(),
        ];
        for (i, &v) in vals.iter().enumerate() {
            parts[i % 3].observe(v);
        }
        let mut merged = QuantileSketch::new();
        merged.merge(&parts[2]);
        merged.merge(&parts[0]);
        merged.merge(&parts[1]);
        assert_eq!(merged, whole);
        assert_eq!(merged.to_json(), whole.to_json());
    }

    #[test]
    fn quantiles_never_overestimate_and_stay_in_bound() {
        let vals: Vec<u64> = (1..=1000u64).map(|i| i * i).collect();
        let mut s = QuantileSketch::new();
        for &v in &vals {
            s.observe(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let truth = vals[rank - 1]; // vals is sorted
            let got = s.quantile(q);
            assert!(got <= truth, "q{q}: {got} > {truth}");
            assert!(
                (truth - got) as f64 <= REL_ERROR * got as f64 + 1e-9,
                "q{q}: {got} vs {truth}"
            );
        }
    }

    #[test]
    fn json_is_canonical_and_consistent() {
        let mut s = QuantileSketch::new();
        for v in [3u64, 3, 90, 1 << 30] {
            s.observe(v);
        }
        let j = s.to_json();
        assert!(j.starts_with("{\"count\": 4, "), "{j}");
        assert!(j.contains("\"buckets\": [[3, 2], "), "{j}");
        // Bucket counts sum to count (the validate-trace invariant).
        let total: u64 = s.nonzero_buckets().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, s.count());
        assert_eq!(s.clone().to_json(), j);
    }
}
