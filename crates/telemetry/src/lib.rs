//! Workspace observability (`spp_runtime::telemetry`): a metrics
//! registry, scoped spans, and trace exporters.
//!
//! Design constraints (DESIGN.md §10):
//!
//! 1. **Free when disabled.** Every hot-path entry point — counter adds,
//!    histogram observations, span creation — starts with one relaxed
//!    load of a global flag and returns immediately when it is off. The
//!    disabled path is benchmarked below 5 ns/event
//!    (`spp-bench/bin/telemetry_overhead`).
//! 2. **Deterministic-safe when enabled.** Recording writes to
//!    thread-local shards of relaxed atomics and to an event ring buffer;
//!    nothing is ever read back by the computation, and snapshots merge
//!    shards in registration index order, so enabling telemetry cannot
//!    perturb the bit-identity contract of DESIGN.md §9.
//! 3. **One clock.** [`span::clock_ns`] is the workspace's only wall
//!    clock outside `spp-bench` and the DES virtual clock (lint L6);
//!    simulated (virtual-time) spans are recorded through
//!    [`span::record_sim_span`] and exported on their own trace process.
//!
//! Span names follow `crate.component.stage` (e.g. `core.vip.sweep`,
//! `pipeline.stage6.slice`); the Appendix-D stage list is the
//! [`stage::PipelineStage`] enum, shared with the DES pipeline models so
//! stage labels cannot drift.
//!
//! # Example
//!
//! ```
//! use spp_telemetry as tel;
//!
//! tel::set_enabled(true);
//! let batches = tel::metrics::counter("doc.batches");
//! {
//!     let _span = tel::span!("doc.prep");
//!     batches.inc();
//! }
//! assert_eq!(batches.value(), 1);
//! assert!(tel::export::summary().contains("doc.batches"));
//! tel::set_enabled(false);
//! ```

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub mod attrib;
pub mod export;
pub mod metrics;
pub mod sketch;
pub mod snapshot;
pub mod span;
pub mod stage;

pub use attrib::{
    attrib_json, publish_cache_report, publish_comm_report, publish_store_report, reset_attrib,
    CacheReport, CommReport, StoreReport, TierStats,
};
pub use export::{init_from_env, summary, write_trace_files};
pub use metrics::{counter, enabled, gauge, histogram, set_enabled, snapshot};
pub use sketch::QuantileSketch;
pub use snapshot::{render_dashboard, start_snapshotter};
pub use span::{clock_ns, events_snapshot, record_sim_span, sim_track, Event, SpanGuard};
pub use stage::PipelineStage;

/// Opens a scoped span: `let _g = span!("crate.component.stage");`.
/// The span ends (and its duration is recorded) when the guard drops.
/// A no-op returning an inert guard while telemetry is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
}
