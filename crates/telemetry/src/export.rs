//! Exporters: end-of-run summary table, JSONL event stream, and Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` or Perfetto).
//!
//! The Chrome trace places wall-clock spans on process 1 (one row per
//! recording thread) and simulated-time spans on process 2 (one row per
//! DES resource track), so real and virtual time never share a
//! timeline. All JSON is built by hand — the workspace has no serde —
//! with full string escaping; `cargo xtask validate-trace` checks the
//! emitted files against this schema in CI.

use crate::metrics::{self, MetricsSnapshot};
use crate::span::{self, Event};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Reads the `SPP_TRACE` environment knob (set and not `"0"` ⇒ on) and
/// enables recording accordingly. Returns whether tracing is on.
///
/// Also honours `SPP_SNAPSHOT=<secs>`: a positive number starts the
/// live dashboard thread ([`crate::snapshot::start_snapshotter`]) that
/// prints an `spp-top`-style view of the metrics registry to stderr
/// every `<secs>` seconds. Snapshots imply metrics recording, so
/// setting `SPP_SNAPSHOT` alone turns telemetry on too.
pub fn init_from_env() -> bool {
    let mut on = std::env::var("SPP_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if let Ok(v) = std::env::var("SPP_SNAPSHOT") {
        if let Ok(secs) = v.trim().parse::<f64>() {
            if secs > 0.0 && crate::snapshot::start_snapshotter(secs) {
                on = true;
            }
        }
    }
    if on {
        metrics::set_enabled(true);
    }
    on
}

/// Escapes `s` for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the human-readable end-of-run summary: every registered
/// counter, gauge, and histogram (count/mean/p50/p95/max), merged
/// across shards, in registration order.
pub fn summary() -> String {
    let snap: MetricsSnapshot = metrics::snapshot();
    let mut out = String::new();
    out.push_str("== telemetry summary ==\n");
    let width = snap
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(snap.gauges.iter().map(|(n, _)| n.len()))
        .chain(snap.histograms.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(0)
        .max(8);
    if !snap.counters.is_empty() {
        out.push_str("-- counters --\n");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "  {name:<width$}  {v:>14}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("-- gauges (last / max) --\n");
        for (name, g) in &snap.gauges {
            let _ = writeln!(out, "  {name:<width$}  {:>14} / {}", g.value, g.max);
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("-- histograms (count / mean / p50 / p99 / p999 / max) --\n");
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {name:<width$}  {:>10} / {:>12.1} / {:>10} / {:>10} / {:>10} / {:>10}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.quantile(0.999),
                h.max
            );
        }
    }
    let dropped = span::dropped_events();
    if dropped > 0 {
        let _ = writeln!(out, "  (ring buffer overwrote {dropped} events)");
    }
    out
}

fn push_chrome_event(out: &mut String, ev: &Event) {
    let pid = if ev.sim { 2 } else { 1 };
    let ts = ev.start_ns as f64 / 1000.0;
    let dur = ev.dur_ns as f64 / 1000.0;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\
         \"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{\"depth\":{}}}}}",
        esc(&ev.name),
        if ev.sim { "sim" } else { "wall" },
        ev.tid,
        ev.depth
    );
}

/// Renders the event log as Chrome `trace_event` JSON. Wall spans live
/// on pid 1 (µs since the clock anchor), simulated spans on pid 2 (µs
/// of virtual time).
pub fn chrome_trace_json() -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let meta = |out: &mut String,
                first: &mut bool,
                name: &str,
                pid: u64,
                tid: Option<u64>,
                value: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        let tid_field = tid.map(|t| format!(",\"tid\":{t}")).unwrap_or_default();
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid}{tid_field},\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(value)
        );
    };
    meta(&mut out, &mut first, "process_name", 1, None, "wall clock");
    meta(
        &mut out,
        &mut first,
        "process_name",
        2,
        None,
        "simulated (DES virtual time)",
    );
    span::with_log(|l| {
        for (tid, name) in &l.threads {
            meta(&mut out, &mut first, "thread_name", 1, Some(*tid), name);
        }
        for (i, name) in l.sim_tracks.iter().enumerate() {
            meta(&mut out, &mut first, "thread_name", 2, Some(i as u64), name);
        }
        for ev in &l.events {
            if !first {
                out.push(',');
            }
            first = false;
            push_chrome_event(&mut out, ev);
        }
    });
    out.push_str("],\"displayTimeUnit\":\"ms\"");
    // Published attribution reports ride along as a top-level section
    // (already canonical JSON; `cargo xtask validate-trace --attrib`
    // checks it). Chrome/Perfetto ignore unknown top-level keys.
    if let Some(attrib) = crate::attrib::attrib_json() {
        let _ = write!(out, ",\"attrib\":{attrib}");
    }
    out.push('}');
    out
}

/// Renders the event log as JSON Lines, one event object per line.
pub fn events_jsonl() -> String {
    let mut out = String::new();
    span::with_log(|l| {
        for ev in &l.events {
            let _ = writeln!(
                out,
                "{{\"name\":\"{}\",\"sim\":{},\"tid\":{},\"start_ns\":{},\
                 \"dur_ns\":{},\"depth\":{}}}",
                esc(&ev.name),
                ev.sim,
                ev.tid,
                ev.start_ns,
                ev.dur_ns,
                ev.depth
            );
        }
    });
    out
}

/// Writes `trace_<label>.json` (Chrome format) and `trace_<label>.jsonl`
/// (event stream) under `dir`, creating it if needed. Returns the paths
/// written.
pub fn write_trace_files(dir: &Path, label: &str) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let chrome = dir.join(format!("trace_{label}.json"));
    std::fs::write(&chrome, chrome_trace_json())?;
    let jsonl = dir.join(format!("trace_{label}.jsonl"));
    std::fs::write(&jsonl, events_jsonl())?;
    Ok(vec![chrome, jsonl])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{set_enabled, test_lock};

    #[test]
    fn chrome_trace_is_wellformed_and_escaped() {
        let _g = test_lock();
        set_enabled(true);
        let track = span::sim_track("export-test-track");
        span::record_sim_span(track, "export.\"quoted\"\nname", 0.001, 0.002);
        {
            let _s = crate::span!("export.test.wall");
        }
        set_enabled(false);
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.ends_with('}'));
        assert!(json.contains("\\\"quoted\\\"\\nname"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("export.test.wall"));
        // Raw control characters must never appear inside the JSON.
        assert!(!json.bytes().any(|b| b < 0x20));
    }

    #[test]
    fn chrome_trace_embeds_published_attribution() {
        let _g = test_lock();
        crate::attrib::publish_cache_report(crate::attrib::CacheReport {
            label: "export-attrib-test".into(),
            scheme: "f32".into(),
            ..crate::attrib::CacheReport::default()
        });
        let json = chrome_trace_json();
        assert!(json.contains("\"attrib\":{\"cache\": ["), "{json}");
        assert!(json.contains("\"label\": \"export-attrib-test\""), "{json}");
        crate::attrib::reset_attrib();
    }

    #[test]
    fn summary_lists_all_metric_kinds() {
        let _g = test_lock();
        set_enabled(true);
        metrics::counter("export.test.counter").add(7);
        metrics::gauge("export.test.gauge").set(3);
        metrics::histogram("export.test.hist").observe(100);
        set_enabled(false);
        let s = summary();
        assert!(s.contains("export.test.counter"));
        assert!(s.contains("export.test.gauge"));
        assert!(s.contains("export.test.hist"));
    }

    #[test]
    fn jsonl_has_one_object_per_line() {
        let _g = test_lock();
        set_enabled(true);
        {
            let _s = crate::span!("export.test.jsonl");
        }
        set_enabled(false);
        let text = events_jsonl();
        assert!(text.lines().count() >= 1);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"name\":"));
            assert!(line.contains("\"start_ns\":"));
        }
    }
}
