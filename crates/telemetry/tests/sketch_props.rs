//! Property-based tests for the mergeable quantile sketch: merge
//! exactness and the advertised relative-error bound (DESIGN.md §15).

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use spp_telemetry::sketch::{QuantileSketch, REL_ERROR};

/// Exact q-quantile (ceil-rank order statistic) of a sorted stream —
/// the same rank convention the sketch uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    assert!(n > 0);
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting a stream into arbitrary chunks, sketching each chunk,
    /// and merging must give the *bit-identical* sketch (and hence
    /// identical quantiles) as sketching the whole stream in one pass:
    /// merge is an elementwise counter add, so it is exact and
    /// order-independent.
    #[test]
    fn merged_sketch_equals_whole_stream_sketch(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..400),
        parts in 1usize..8,
    ) {
        let mut whole = QuantileSketch::new();
        for &v in &values {
            whole.observe(v);
        }

        let chunk = values.len().div_ceil(parts);
        let mut merged = QuantileSketch::new();
        // Merge right-to-left to also exercise order independence.
        for piece in values.chunks(chunk).rev() {
            let mut part = QuantileSketch::new();
            for &v in piece {
                part.observe(v);
            }
            merged.merge(&part);
        }

        prop_assert_eq!(&merged, &whole);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(merged.sum(), values.iter().map(|&v| u128::from(v)).sum::<u128>());
    }

    /// Every reported quantile must sit within the advertised relative
    /// error of the true (ceil-rank) order statistic, and never above
    /// it: the sketch reports bucket floors.
    #[test]
    fn quantiles_within_advertised_relative_error(
        mut values in proptest::collection::vec(0u64..u64::MAX / 2, 1..400),
        qs in proptest::collection::vec(0u32..=1000, 1..8),
    ) {
        let mut sk = QuantileSketch::new();
        for &v in &values {
            sk.observe(v);
        }
        values.sort_unstable();
        for q in qs.into_iter().map(|m| f64::from(m) / 1000.0) {
            let truth = exact_quantile(&values, q);
            let got = sk.quantile(q);
            prop_assert!(got <= truth, "q={q}: sketch {got} > exact {truth}");
            let lower = truth as f64 / (1.0 + REL_ERROR);
            prop_assert!(
                got as f64 >= lower.floor(),
                "q={q}: sketch {got} below error bound {lower} (exact {truth})"
            );
        }
    }
}
