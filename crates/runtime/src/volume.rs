//! Communication-volume measurement (the Figure 2 experiment).
//!
//! Runs real node-wise sampling over the per-partition minibatch streams
//! and counts, for every machine, how often each vertex appears in its
//! sampled neighborhoods. Given those counts, the per-epoch remote
//! communication volume of *any* static cache is a cheap sum — so one
//! measurement pass evaluates every policy and every replication factor,
//! exactly like the paper's simulation harness. The counts also provide
//! the retrospective "oracle" ranking (the communication lower bound).

use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_core::StaticCache;
use spp_graph::{CsrGraph, VertexId};
use spp_partition::Partitioning;
use spp_sampler::{Fanouts, MinibatchIter, NodeWiseSampler};

/// Per-machine, per-vertex sampled-access counts over some number of
/// measured epochs (original vertex-id space).
///
/// # Example
///
/// ```
/// use spp_graph::generate::GeneratorConfig;
/// use spp_partition::simple::block_partition;
/// use spp_runtime::AccessCounts;
/// use spp_sampler::Fanouts;
///
/// let g = GeneratorConfig::erdos_renyi(100, 500).seed(1).build();
/// let part = block_partition(100, 2);
/// let train = vec![vec![0, 1, 2, 3], vec![50, 51, 52, 53]];
/// let counts = AccessCounts::measure(&g, &train, &Fanouts::new(vec![3, 3]), 2, 1, 7);
/// assert!(counts.no_cache_volume(&part) > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct AccessCounts {
    /// `counts[k][v]` = number of times vertex `v` appeared in machine
    /// `k`'s sampled neighborhoods.
    pub counts: Vec<Vec<u64>>,
    /// Number of measured epochs.
    pub epochs: usize,
}

impl AccessCounts {
    /// Measures access counts by sampling `epochs` epochs of every
    /// machine's minibatch stream.
    pub fn measure(
        graph: &CsrGraph,
        train_of_part: &[Vec<VertexId>],
        fanouts: &Fanouts,
        batch_size: usize,
        epochs: usize,
        seed: u64,
    ) -> Self {
        let n = graph.num_vertices();
        // Machines sample independent streams; run one thread per machine
        // (shared-memory parallel batch preparation, as in SALIENT).
        let measure_one = |k: usize, train: &[VertexId]| {
            let sampler = NodeWiseSampler::new(graph, fanouts.clone());
            let mut rng = StdRng::seed_from_u64(seed ^ (k as u64).wrapping_mul(0x9E37));
            let mut c = vec![0u64; n];
            for e in 0..epochs {
                for batch in MinibatchIter::new(train, batch_size, seed ^ k as u64, e as u64) {
                    let mfg = sampler.sample(&batch, &mut rng);
                    for &v in &mfg.nodes {
                        c[v as usize] += 1;
                    }
                }
            }
            c
        };
        // Pool jobs, never one unbounded thread per machine.
        let counts = crate::pool::WorkerPool::global()
            .run_jobs(train_of_part.len(), |k| measure_one(k, &train_of_part[k]));
        Self { counts, epochs }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.counts.len()
    }

    /// Average per-epoch remote communication volume (in vertices) for
    /// machine `k` under `cache`: accesses to vertices that are neither
    /// local nor cached.
    pub fn machine_volume(
        &self,
        partitioning: &Partitioning,
        k: usize,
        cache: &StaticCache,
    ) -> f64 {
        let total: u64 = self.counts[k]
            .iter()
            .enumerate()
            .filter(|&(v, _)| {
                partitioning.part_of(v as VertexId) != k as u32 && !cache.contains(v as VertexId)
            })
            .map(|(_, &c)| c)
            .sum();
        total as f64 / self.epochs.max(1) as f64
    }

    /// Total average per-epoch remote volume across machines under the
    /// given per-machine caches.
    pub fn total_volume(&self, partitioning: &Partitioning, caches: &[StaticCache]) -> f64 {
        assert_eq!(caches.len(), self.num_machines(), "one cache per machine");
        (0..self.num_machines())
            .map(|k| self.machine_volume(partitioning, k, &caches[k]))
            .sum()
    }

    /// Remote volume with no caching (Figure 2's upper bound).
    pub fn no_cache_volume(&self, partitioning: &Partitioning) -> f64 {
        let empty: Vec<StaticCache> = (0..self.num_machines())
            .map(|_| StaticCache::empty())
            .collect();
        self.total_volume(partitioning, &empty)
    }

    /// The oracle ranking for machine `k`: remote vertices by descending
    /// measured access count (ties by id). Prefix caches of this ranking
    /// are communication-optimal for the measured run.
    pub fn oracle_ranking(&self, partitioning: &Partitioning, k: usize) -> Vec<VertexId> {
        let mut remote: Vec<VertexId> = (0..self.counts[k].len() as VertexId)
            .filter(|&v| partitioning.part_of(v) != k as u32 && self.counts[k][v as usize] > 0)
            .collect();
        remote.sort_by(|&a, &b| {
            self.counts[k][b as usize]
                .cmp(&self.counts[k][a as usize])
                .then(a.cmp(&b))
        });
        remote
    }
}

/// A labelled communication-volume result (one Figure 2 data point).
#[derive(Clone, Debug)]
pub struct CommVolume {
    /// Policy label.
    pub policy: &'static str,
    /// Replication factor α.
    pub alpha: f64,
    /// Average per-epoch communication volume in vertices.
    pub vertices_per_epoch: f64,
}

impl CommVolume {
    /// Improvement factor relative to a no-caching volume.
    pub fn improvement_over(&self, no_cache: f64) -> f64 {
        if self.vertices_per_epoch <= 0.0 {
            f64::INFINITY
        } else {
            no_cache / self.vertices_per_epoch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_graph::generate::GeneratorConfig;
    use spp_partition::simple::block_partition;

    fn fixture() -> (CsrGraph, Partitioning, Vec<Vec<VertexId>>) {
        let g = GeneratorConfig::planted_partition(300, 2400, 2, 0.8)
            .seed(1)
            .build();
        let p = block_partition(300, 2);
        let train = vec![(0..60).collect(), (150..210).collect()];
        (g, p, train)
    }

    #[test]
    fn counts_cover_seeds() {
        let (g, _, train) = fixture();
        let ac = AccessCounts::measure(&g, &train, &Fanouts::new(vec![3, 3]), 16, 2, 5);
        // Every train vertex is a seed at least once per epoch.
        for (k, t) in train.iter().enumerate() {
            for &v in t {
                assert!(ac.counts[k][v as usize] >= 2, "seed {v} undercounted");
            }
        }
    }

    #[test]
    fn caching_reduces_volume_monotonically() {
        let (g, p, train) = fixture();
        let ac = AccessCounts::measure(&g, &train, &Fanouts::new(vec![5, 5]), 16, 2, 6);
        let none = ac.no_cache_volume(&p);
        assert!(none > 0.0);
        // Cache the oracle prefix of growing size: volume must shrink.
        let mut prev = none;
        for cap in [10usize, 40, 80] {
            let caches: Vec<StaticCache> = (0..2)
                .map(|k| {
                    let r = ac.oracle_ranking(&p, k);
                    StaticCache::from_members(&r[..cap.min(r.len())])
                })
                .collect();
            let vol = ac.total_volume(&p, &caches);
            assert!(vol <= prev + 1e-9, "volume must not grow with cache size");
            prev = vol;
        }
    }

    #[test]
    fn oracle_beats_or_ties_reverse_oracle() {
        let (g, p, train) = fixture();
        let ac = AccessCounts::measure(&g, &train, &Fanouts::new(vec![5, 5]), 16, 2, 7);
        let cap = 30;
        let oracle: Vec<StaticCache> = (0..2)
            .map(|k| {
                let r = ac.oracle_ranking(&p, k);
                StaticCache::from_members(&r[..cap.min(r.len())])
            })
            .collect();
        let anti: Vec<StaticCache> = (0..2)
            .map(|k| {
                let mut r = ac.oracle_ranking(&p, k);
                r.reverse();
                StaticCache::from_members(&r[..cap.min(r.len())])
            })
            .collect();
        assert!(ac.total_volume(&p, &oracle) <= ac.total_volume(&p, &anti));
    }

    #[test]
    fn volume_is_per_epoch_average() {
        let (g, p, train) = fixture();
        let a1 = AccessCounts::measure(&g, &train, &Fanouts::new(vec![3]), 16, 1, 8);
        let a4 = AccessCounts::measure(&g, &train, &Fanouts::new(vec![3]), 16, 4, 8);
        let v1 = a1.no_cache_volume(&p);
        let v4 = a4.no_cache_volume(&p);
        // Averages should be comparable (within 30%), not 4× apart.
        assert!(v4 < v1 * 1.3 && v4 > v1 * 0.7, "v1={v1} v4={v4}");
    }

    #[test]
    fn improvement_factor() {
        let cv = CommVolume {
            policy: "VIP",
            alpha: 0.1,
            vertices_per_epoch: 50.0,
        };
        assert_eq!(cv.improvement_over(200.0), 4.0);
    }
}
