//! Measured per-batch workload quantities shared by the timing
//! simulations ([`crate::systems`] and [`crate::pipeline`]).

use crate::setup::DistributedSetup;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_sampler::{MinibatchIter, NodeWiseSampler};

/// Per-round, per-machine workload quantities measured from real sampling
/// against the deployment's feature stores.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Sampled MFG edges (drives sampling cost).
    pub edges: usize,
    /// Rows already resident on GPU (no slice, no transfer).
    pub local_gpu: usize,
    /// Input rows feeding each GNN layer (drives FLOPs).
    pub layer_rows: Vec<usize>,
    /// Local rows in host memory (sliced + H2D).
    pub local_cpu: usize,
    /// Remote rows served by the local cache (host memory; H2D only).
    pub cached: usize,
    /// Rows fetched over the network.
    pub remote_total: usize,
    /// Remote rows per owning machine.
    pub remote_per_owner: Vec<usize>,
}

/// Samples one epoch's minibatch streams for every machine and measures
/// the per-batch quantities. With `full_replication` the plan is
/// overridden: every vertex is local, split across GPU/CPU by the
/// setup's β.
pub fn measure_epoch(
    setup: &DistributedSetup,
    full_replication: bool,
    epoch: u64,
) -> Vec<Vec<BatchStats>> {
    measure_streams(setup, full_replication, epoch, &setup.local_train)
}

/// Like [`measure_epoch`] but over caller-supplied per-machine seed
/// streams (e.g. validation/test vertices for inference epochs).
pub fn measure_streams(
    setup: &DistributedSetup,
    full_replication: bool,
    epoch: u64,
    streams: &[Vec<spp_graph::VertexId>],
) -> Vec<Vec<BatchStats>> {
    assert_eq!(
        streams.len(),
        setup.num_machines(),
        "one stream per machine"
    );
    let k = setup.num_machines();
    let fanouts = &setup.config.fanouts;
    let graph = &setup.dataset.graph;
    let l = fanouts.num_hops();
    let measure_machine = |m: usize| {
        let sampler = NodeWiseSampler::new(graph, fanouts.clone());
        let mut rng = StdRng::seed_from_u64(setup.config.seed ^ (m as u64) ^ (epoch << 17));
        MinibatchIter::new(
            &streams[m],
            setup.config.batch_size,
            setup.config.seed ^ m as u64,
            epoch,
        )
        .map(|batch| {
            let mfg = sampler.sample(&batch, &mut rng);
            // Layer l (1-indexed) input rows = cumulative size at
            // depth L - l + 1; its output rows = size at L - l.
            let layer_rows: Vec<usize> = (1..=l).map(|layer| mfg.sizes[l - layer + 1]).collect();
            if full_replication {
                let nodes = mfg.num_nodes();
                let gpu = (nodes as f64 * setup.config.beta).round() as usize;
                BatchStats {
                    edges: mfg.num_edges(),
                    layer_rows,
                    local_gpu: gpu,
                    local_cpu: nodes - gpu,
                    cached: 0,
                    remote_total: 0,
                    remote_per_owner: vec![0; k],
                }
            } else {
                let plan = setup.stores[m].plan(&mfg.nodes);
                BatchStats {
                    edges: mfg.num_edges(),
                    layer_rows,
                    local_gpu: plan.local_gpu.len(),
                    local_cpu: plan.local_cpu.len(),
                    cached: plan.cached.len(),
                    remote_total: plan.num_remote(),
                    remote_per_owner: plan.remote.iter().map(Vec::len).collect(),
                }
            }
        })
        .collect::<Vec<BatchStats>>()
    };
    // Machines sample independent streams; pool jobs, never one
    // unbounded thread per machine (SALIENT's shared-memory parallel
    // batch preparation, on the bounded worker budget).
    crate::pool::WorkerPool::global().run_jobs(k, measure_machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SetupConfig;
    use spp_core::policies::CachePolicy;
    use spp_graph::dataset::SyntheticSpec;
    use spp_sampler::Fanouts;

    fn setup() -> DistributedSetup {
        let ds = SyntheticSpec::new("w", 600, 8.0, 8, 4)
            .split_fractions(0.2, 0.05, 0.05)
            .seed(1)
            .build();
        DistributedSetup::build(
            &ds,
            SetupConfig {
                num_machines: 2,
                fanouts: Fanouts::new(vec![4, 3]),
                batch_size: 16,
                policy: CachePolicy::VipAnalytic,
                alpha: 0.2,
                beta: 0.5,
                vip_reorder: true,
                seed: 2,
                ..SetupConfig::default()
            },
        )
    }

    #[test]
    fn partitioned_counts_are_consistent() {
        let s = setup();
        let stats = measure_epoch(&s, false, 0);
        assert_eq!(stats.len(), 2);
        for machine in &stats {
            for b in machine {
                let total = b.local_gpu + b.local_cpu + b.cached + b.remote_total;
                // Total classified = MFG nodes = layer input rows at depth L.
                assert_eq!(total, b.layer_rows[0]);
                assert_eq!(b.remote_per_owner.iter().sum::<usize>(), b.remote_total);
                assert!(b.layer_rows.windows(2).all(|w| w[0] >= w[1]));
            }
        }
    }

    #[test]
    fn full_replication_has_no_remote() {
        let s = setup();
        let stats = measure_epoch(&s, true, 0);
        for machine in &stats {
            for b in machine {
                assert_eq!(b.remote_total, 0);
                assert_eq!(b.cached, 0);
                // Beta = 0.5 splits locals roughly in half.
                let total = b.local_gpu + b.local_cpu;
                assert!(b.local_gpu.abs_diff(b.local_cpu) <= 1);
                assert_eq!(total, b.layer_rows[0]);
            }
        }
    }

    #[test]
    fn deterministic_per_epoch() {
        let s = setup();
        let a = measure_epoch(&s, false, 3);
        let b = measure_epoch(&s, false, 3);
        assert_eq!(a.len(), b.len());
        for (ma, mb) in a.iter().zip(&b) {
            for (x, y) in ma.iter().zip(mb) {
                assert_eq!(x.edges, y.edges);
                assert_eq!(x.remote_total, y.remote_total);
            }
        }
    }
}
