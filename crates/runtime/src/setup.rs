//! Building a distributed deployment from a dataset.

use spp_core::policies::{CachePolicy, PolicyContext};
use spp_core::{CacheBuilder, PartitionedFeatureStore, ReorderedLayout, VipModel};
use spp_graph::{Dataset, QuantScheme, VertexId};
use spp_partition::multilevel::MultilevelPartitioner;
use spp_partition::{Partitioning, VertexWeights};
use spp_sampler::Fanouts;
use spp_store::{FeatureStore, PermutedStore};

/// Configuration for [`DistributedSetup::build`].
#[derive(Clone, Debug)]
pub struct SetupConfig {
    /// Number of machines K (one partition each).
    pub num_machines: usize,
    /// Training fanouts.
    pub fanouts: Fanouts,
    /// Per-machine minibatch size.
    pub batch_size: usize,
    /// Remote-feature caching policy.
    pub policy: CachePolicy,
    /// Replication factor α (cache holds αN/K vertices per machine).
    pub alpha: f64,
    /// Fraction β of each machine's local features kept on GPU.
    pub beta: f64,
    /// Storage precision of the static cache tier. Quantized schemes
    /// roughly double (`F16`) or quadruple (`I8`) the vertices cached
    /// per byte at a bounded per-element error; local partition rows
    /// stay full precision.
    pub cache_scheme: QuantScheme,
    /// Order local vertices by VIP (true) or keep input order within each
    /// partition (false, Figure 6's "no reorder").
    pub vip_reorder: bool,
    /// Master seed (partitioning, policies).
    pub seed: u64,
}

impl Default for SetupConfig {
    fn default() -> Self {
        Self {
            num_machines: 4,
            fanouts: Fanouts::new(vec![15, 10, 5]),
            batch_size: 32,
            policy: CachePolicy::VipAnalytic,
            alpha: 0.16,
            beta: 1.0,
            cache_scheme: QuantScheme::F32,
            vip_reorder: true,
            seed: 0,
        }
    }
}

/// A fully materialized distributed deployment: partitioned, reordered,
/// cached feature stores plus per-machine training-vertex streams.
///
/// All vertex ids in `dataset`, `stores`, and `local_train` are in the
/// *reordered* (new) id space; `partitioning` is kept in the original id
/// space for reference.
///
/// # Example
///
/// ```
/// use spp_graph::dataset::SyntheticSpec;
/// use spp_runtime::{DistributedSetup, SetupConfig};
/// use spp_sampler::Fanouts;
///
/// let ds = SyntheticSpec::new("d", 300, 8.0, 8, 4)
///     .split_fractions(0.2, 0.05, 0.05)
///     .seed(1)
///     .build();
/// let setup = DistributedSetup::build(&ds, SetupConfig {
///     num_machines: 2,
///     fanouts: Fanouts::new(vec![4, 3]),
///     alpha: 0.2,
///     ..SetupConfig::default()
/// });
/// assert_eq!(setup.num_machines(), 2);
/// assert!(setup.memory_multiple() <= 1.2);
/// ```
#[derive(Clone, Debug)]
pub struct DistributedSetup {
    /// The configuration used to build this deployment.
    pub config: SetupConfig,
    /// The reordered dataset (new ids).
    pub dataset: Dataset,
    /// The two-level layout (owners, offsets, GPU prefixes).
    pub layout: ReorderedLayout,
    /// The partitioning over original ids.
    pub partitioning: Partitioning,
    /// One feature store per machine.
    pub stores: Vec<PartitionedFeatureStore>,
    /// Per-machine training vertex ids (new id space, sorted).
    pub local_train: Vec<Vec<VertexId>>,
}

impl DistributedSetup {
    /// Partitions, analyzes, reorders, and caches.
    ///
    /// # Panics
    ///
    /// Panics if `config.policy` is [`CachePolicy::Oracle`] (the oracle
    /// needs measured access counts — use [`DistributedSetup::build_with_rankings`]).
    pub fn build(ds: &Dataset, config: SetupConfig) -> Self {
        assert!(
            config.policy != CachePolicy::Oracle,
            "oracle policy needs measured counts; use build_with_rankings"
        );
        let (partitioning, train_of_part) = Self::partition(ds, &config);
        let rankings = Self::policy_rankings(ds, &config, &partitioning, &train_of_part);
        Self::assemble(ds, config, partitioning, train_of_part, rankings)
    }

    /// Like [`DistributedSetup::build`] but filling each machine's
    /// feature slices (local partition rows and static-cache rows) from
    /// an out-of-core [`FeatureStore`] addressed by *original* vertex
    /// ids, instead of the dataset's resident matrix (DESIGN.md §16).
    /// Each machine touches only its own pages; with an f32 store the
    /// deployment is bit-identical to [`DistributedSetup::build`].
    ///
    /// # Panics
    ///
    /// Panics if the store's shape disagrees with the dataset or if
    /// `config.policy` is [`CachePolicy::Oracle`].
    pub fn build_with_feature_store(
        ds: &Dataset,
        config: SetupConfig,
        store: &dyn FeatureStore,
    ) -> Self {
        assert!(
            config.policy != CachePolicy::Oracle,
            "oracle policy needs measured counts; use build_with_rankings"
        );
        assert_eq!(
            store.num_rows(),
            ds.num_vertices(),
            "feature store row count must match the dataset"
        );
        assert_eq!(
            store.dim(),
            ds.features.dim(),
            "feature store dim must match the dataset"
        );
        let (partitioning, train_of_part) = Self::partition(ds, &config);
        let rankings = Self::policy_rankings(ds, &config, &partitioning, &train_of_part);
        Self::assemble_from(
            ds,
            config,
            partitioning,
            train_of_part,
            rankings,
            Some(store),
        )
    }

    /// Per-machine cache rankings under `config.policy` (original ids).
    fn policy_rankings(
        ds: &Dataset,
        config: &SetupConfig,
        partitioning: &Partitioning,
        train_of_part: &[Vec<VertexId>],
    ) -> Vec<Vec<VertexId>> {
        (0..config.num_machines as u32)
            .map(|p| {
                let ctx = PolicyContext {
                    graph: &ds.graph,
                    partitioning,
                    part: p,
                    local_train: &train_of_part[p as usize],
                    fanouts: config.fanouts.clone(),
                    batch_size: config.batch_size,
                    seed: config.seed ^ 0x5eed,
                    oracle_counts: &[],
                };
                ctx.rank(config.policy)
            })
            .collect()
    }

    /// Like [`DistributedSetup::build`] but with externally supplied
    /// per-machine cache rankings (original vertex ids) — used for the
    /// oracle policy and for policy-comparison experiments.
    pub fn build_with_rankings(
        ds: &Dataset,
        config: SetupConfig,
        rankings: Vec<Vec<VertexId>>,
    ) -> Self {
        let (partitioning, train_of_part) = Self::partition(ds, &config);
        Self::assemble(ds, config, partitioning, train_of_part, rankings)
    }

    /// Partitions the original dataset and splits its training set by part.
    pub fn partition(ds: &Dataset, config: &SetupConfig) -> (Partitioning, Vec<Vec<VertexId>>) {
        let w = VertexWeights::from_dataset(ds);
        let partitioning = MultilevelPartitioner::new(config.num_machines)
            .seed(config.seed)
            .partition(&ds.graph, &w);
        let mut train_of_part: Vec<Vec<VertexId>> = vec![Vec::new(); config.num_machines];
        for &v in &ds.split.train {
            train_of_part[partitioning.part_of(v) as usize].push(v);
        }
        (partitioning, train_of_part)
    }

    fn assemble(
        ds: &Dataset,
        config: SetupConfig,
        partitioning: Partitioning,
        train_of_part: Vec<Vec<VertexId>>,
        rankings: Vec<Vec<VertexId>>,
    ) -> Self {
        Self::assemble_from(ds, config, partitioning, train_of_part, rankings, None)
    }

    fn assemble_from(
        ds: &Dataset,
        config: SetupConfig,
        partitioning: Partitioning,
        train_of_part: Vec<Vec<VertexId>>,
        rankings: Vec<Vec<VertexId>>,
        feature_source: Option<&dyn FeatureStore>,
    ) -> Self {
        // Local ordering scores: each partition ranks its own vertices by
        // its local VIP values.
        let layout = if config.vip_reorder {
            let vip = VipModel::new(config.fanouts.clone(), config.batch_size)
                .partition_scores(&ds.graph, &train_of_part);
            ReorderedLayout::build(&partitioning, Some(&vip))
        } else {
            ReorderedLayout::build(&partitioning, None)
        };

        let dataset = ds.permuted(layout.perm());

        // When reading from an external store (original-id order), view
        // it through the inverse layout permutation so machine builds
        // address it by new ids: view.read(new) = store.read(to_old(new)).
        let inv = layout.perm().inverse();
        let view = feature_source.map(|src| PermutedStore::new(src, &inv));

        let cache_builder = CacheBuilder::new(config.alpha, ds.num_vertices(), config.num_machines);
        let stores: Vec<PartitionedFeatureStore> = (0..config.num_machines as u32)
            .map(|p| {
                // Rankings are in original ids; relabel into the new space.
                let mut ranking = rankings[p as usize].clone();
                layout.perm().relabel(&mut ranking);
                let cache = cache_builder.build(&ranking);
                let feats: &dyn FeatureStore = match &view {
                    Some(v) => v,
                    None => &dataset.features,
                };
                PartitionedFeatureStore::build_from_store(
                    p,
                    &layout,
                    feats,
                    config.beta,
                    cache,
                    config.cache_scheme,
                )
            })
            .collect();

        let local_train: Vec<Vec<VertexId>> = (0..config.num_machines as u32)
            .map(|p| {
                let mut t: Vec<VertexId> = train_of_part[p as usize]
                    .iter()
                    .map(|&v| layout.perm().to_new(v))
                    .collect();
                t.sort_unstable();
                t
            })
            .collect();

        Self {
            config,
            dataset,
            layout,
            partitioning,
            stores,
            local_train,
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.config.num_machines
    }

    /// Rounds per epoch: the maximum per-machine batch count (machines
    /// with fewer batches idle in the tail rounds, as in the paper's
    /// partition-wise distributed minibatches).
    pub fn rounds_per_epoch(&self) -> usize {
        self.local_train
            .iter()
            .map(|t| t.len().div_ceil(self.config.batch_size))
            .max()
            .unwrap_or(0)
    }

    /// Total feature memory across machines as a multiple of the
    /// unreplicated dataset (Figure 5's right plot; `1 + α` in expectation).
    pub fn memory_multiple(&self) -> f64 {
        let total: usize = self.stores.iter().map(|s| s.memory_bytes()).sum();
        total as f64 / self.dataset.feature_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_graph::dataset::SyntheticSpec;

    fn tiny_ds() -> Dataset {
        SyntheticSpec::new("t", 600, 10.0, 8, 4)
            .split_fractions(0.3, 0.1, 0.1)
            .seed(7)
            .build()
    }

    fn tiny_cfg() -> SetupConfig {
        SetupConfig {
            num_machines: 3,
            fanouts: Fanouts::new(vec![4, 3]),
            batch_size: 16,
            alpha: 0.2,
            beta: 0.5,
            ..SetupConfig::default()
        }
    }

    #[test]
    fn build_produces_consistent_deployment() {
        let ds = tiny_ds();
        let s = DistributedSetup::build(&ds, tiny_cfg());
        assert_eq!(s.stores.len(), 3);
        // Every training vertex appears in exactly one machine's stream.
        let total: usize = s.local_train.iter().map(Vec::len).sum();
        assert_eq!(total, ds.split.train.len());
        for (k, t) in s.local_train.iter().enumerate() {
            for &v in t {
                assert!(
                    s.layout.is_local(v, k as u32),
                    "train vertex on wrong machine"
                );
            }
        }
    }

    #[test]
    fn caches_sized_by_alpha() {
        let ds = tiny_ds();
        let cfg = tiny_cfg();
        let s = DistributedSetup::build(&ds, cfg.clone());
        let cap = (cfg.alpha * 600.0 / 3.0).round() as usize;
        for store in &s.stores {
            assert!(store.cache().len() <= cap);
            assert!(!store.cache().is_empty(), "cache unexpectedly empty");
        }
    }

    #[test]
    fn memory_multiple_close_to_one_plus_alpha() {
        let ds = tiny_ds();
        let s = DistributedSetup::build(&ds, tiny_cfg());
        let m = s.memory_multiple();
        assert!((1.0..=1.0 + 0.2 + 1e-9).contains(&m), "memory multiple {m}");
    }

    #[test]
    fn zero_alpha_means_no_cache() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg();
        cfg.alpha = 0.0;
        cfg.policy = CachePolicy::None;
        let s = DistributedSetup::build(&ds, cfg);
        assert!(s.stores.iter().all(|st| st.cache().is_empty()));
        assert!((s.memory_multiple() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rounds_per_epoch_is_max() {
        let ds = tiny_ds();
        let s = DistributedSetup::build(&ds, tiny_cfg());
        let expect = s
            .local_train
            .iter()
            .map(|t| t.len().div_ceil(16))
            .max()
            .unwrap();
        assert_eq!(s.rounds_per_epoch(), expect);
    }

    #[test]
    fn reordered_features_match_originals() {
        let ds = tiny_ds();
        let s = DistributedSetup::build(&ds, tiny_cfg());
        for old in (0..600u32).step_by(37) {
            let new = s.layout.perm().to_new(old);
            assert_eq!(ds.features.row(old), s.dataset.features.row(new));
        }
    }

    #[test]
    #[should_panic(expected = "oracle policy needs measured counts")]
    fn oracle_requires_rankings() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg();
        cfg.policy = CachePolicy::Oracle;
        DistributedSetup::build(&ds, cfg);
    }
}
