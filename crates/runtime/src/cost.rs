//! The per-machine cost model for timing simulations.
//!
//! Stage durations are computed from *measured* workload quantities
//! (sampled MFG sizes, per-location vertex counts, bytes) and hardware
//! throughput constants calibrated to the paper's testbed: one AWS
//! g5.8xlarge per machine — 16-core CPU, one NVIDIA A10G, PCIe gen4, and
//! a 25 Gbps network SLA. Absolute times at mini scale are not meant to
//! match the paper's seconds; the *ratios* between system variants are
//! (DESIGN.md §2).

use spp_comm::NetworkModel;

/// Hardware throughput constants for one machine plus the interconnect.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Sampled-edge throughput of the shared-memory sampler pool (edges/s).
    pub sample_edges_per_sec: f64,
    /// Fixed per-batch sampling overhead (s).
    pub sample_fixed: f64,
    /// Feature-slicing (gather memcpy) throughput (bytes/s).
    pub slice_bytes_per_sec: f64,
    /// Host-to-device PCIe throughput (bytes/s).
    pub pcie_bytes_per_sec: f64,
    /// Fixed per-transfer PCIe overhead (s).
    pub pcie_fixed: f64,
    /// Effective GPU throughput for dense layers (FLOP/s).
    pub gpu_flops: f64,
    /// Fixed per-batch GPU overhead — kernel launches etc. (s).
    pub gpu_fixed: f64,
    /// The network.
    pub network: NetworkModel,
    /// Extra software overhead per communication round (s) — RPC stack,
    /// tensor (de)serialization. SALIENT++ keeps this tiny; DistDGL's RPC
    /// layer makes it large.
    pub comm_software_overhead: f64,
    /// Fraction of the gradient all-reduce hidden under the backward pass
    /// (PyTorch DDP overlaps gradient buckets with computation).
    pub allreduce_overlap: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            sample_edges_per_sec: 30e6,
            sample_fixed: 0.2e-3,
            slice_bytes_per_sec: 5e9,
            pcie_bytes_per_sec: 12e9,
            pcie_fixed: 30e-6,
            gpu_flops: 7e12,
            gpu_fixed: 0.5e-3,
            network: NetworkModel::aws_25gbps(),
            comm_software_overhead: 100e-6,
            allreduce_overlap: 0.0,
        }
    }
}

impl CostModel {
    /// The cost model the experiment harnesses use at 1/1000 dataset
    /// scale. The paper's testbed moves ~4 network bytes per GPU FLOP of
    /// training compute in the no-cache partitioned configuration; at
    /// mini scale the sampled neighborhoods are relatively denser and the
    /// feature vectors half as wide, so the simulated link rate is scaled
    /// down (25 Gbps -> 5 Gbps) to restore the paper's bytes-to-FLOPs
    /// balance, and DDP's gradient-bucket overlap is modeled explicitly.
    /// Shapes, not absolute seconds, are the reproduction target
    /// (DESIGN.md §2).
    pub fn mini_calibrated() -> Self {
        Self {
            sample_fixed: 50e-6,
            gpu_fixed: 100e-6,
            network: NetworkModel::new(2.5e9 / 8.0, 50e-6),
            comm_software_overhead: 25e-6,
            allreduce_overlap: 0.9,
            // PCIe and host gather throughput get the same bytes-per-FLOP
            // rescaling as the link rate (the host-to-device path is what
            // Figure 6's GPU-prefix experiment exercises).
            pcie_bytes_per_sec: 1.5e9,
            slice_bytes_per_sec: 2.5e9,
            ..Self::default()
        }
    }

    /// Replaces the network model (e.g. for slow-network experiments).
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Time to sample an MFG with the given sampled-edge count.
    pub fn sample_time(&self, mfg_edges: usize) -> f64 {
        self.sample_fixed + mfg_edges as f64 / self.sample_edges_per_sec
    }

    /// Time to slice `rows` feature rows of dimension `dim` out of host
    /// memory.
    pub fn slice_time(&self, rows: usize, dim: usize) -> f64 {
        rows as f64 * dim as f64 * 4.0 / self.slice_bytes_per_sec
    }

    /// Time to move `bytes` host-to-device (or device-to-host).
    pub fn pcie_time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.pcie_fixed + bytes / self.pcie_bytes_per_sec
    }

    /// Forward+backward GPU time for a GNN batch.
    ///
    /// `layer_rows[l]` is the number of input rows feeding layer `l`
    /// (the MFG's cumulative size at depth `L-l`), and `dims` the layer
    /// widths `[in, hidden…, classes]`. FLOPs ≈ Σ rows·d_in·d_out·2,
    /// tripled for forward + backward (two grad matmuls).
    pub fn train_time(&self, layer_rows: &[usize], dims: &[usize]) -> f64 {
        let mut flops = 0.0f64;
        for (l, &rows) in layer_rows.iter().enumerate() {
            let din = dims[l] as f64;
            let dout = dims[l + 1] as f64;
            // GraphSAGE has two weight matrices (self + neighbor) per layer.
            flops += rows as f64 * din * dout * 2.0 * 2.0;
        }
        self.gpu_fixed + flops * 3.0 / self.gpu_flops
    }

    /// Inference-only GPU time (forward pass).
    pub fn infer_time(&self, layer_rows: &[usize], dims: &[usize]) -> f64 {
        (self.train_time(layer_rows, dims) - self.gpu_fixed) / 3.0 + self.gpu_fixed
    }

    /// Time for one machine's share of a feature all-to-all: it sends
    /// `bytes_out` and receives `bytes_in`; the NIC is full duplex so the
    /// directions overlap, and the round pays latency plus software
    /// overhead once.
    pub fn exchange_time(&self, bytes_out: f64, bytes_in: f64) -> f64 {
        if bytes_out <= 0.0 && bytes_in <= 0.0 {
            return 0.0;
        }
        let wire = bytes_out.max(bytes_in) / self.network.effective_rate();
        self.network.latency + self.comm_software_overhead + wire
    }

    /// Ring all-reduce time for `grad_bytes` of gradients over `k`
    /// machines (2(k−1)/k of the data crosses each NIC).
    pub fn allreduce_time(&self, k: usize, grad_bytes: f64) -> f64 {
        if k <= 1 {
            return 0.0;
        }
        let wire = 2.0 * grad_bytes * (k as f64 - 1.0) / k as f64 / self.network.effective_rate();
        (self.network.latency * (k as f64).log2().ceil() + wire) * (1.0 - self.allreduce_overlap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_time_scales_with_edges() {
        let c = CostModel::default();
        let t1 = c.sample_time(30_000_000);
        assert!((t1 - (1.0 + 0.2e-3)).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        let c = CostModel::default();
        assert_eq!(c.pcie_time(0.0), 0.0);
        assert_eq!(c.exchange_time(0.0, 0.0), 0.0);
    }

    #[test]
    fn exchange_is_full_duplex() {
        let c = CostModel::default();
        let t_out = c.exchange_time(1e6, 0.0);
        let t_both = c.exchange_time(1e6, 1e6);
        assert!((t_out - t_both).abs() < 1e-12, "duplex directions overlap");
        assert!(c.exchange_time(1e6, 2e6) > t_both);
    }

    #[test]
    fn allreduce_single_machine_free() {
        let c = CostModel::default();
        assert_eq!(c.allreduce_time(1, 1e9), 0.0);
        assert!(c.allreduce_time(8, 1e6) > 0.0);
    }

    #[test]
    fn train_time_grows_with_rows_and_dims() {
        let c = CostModel::default();
        let small = c.train_time(&[1000, 100], &[64, 64, 16]);
        let big = c.train_time(&[10_000, 1000], &[64, 64, 16]);
        assert!(big > small);
        let wide = c.train_time(&[1000, 100], &[256, 256, 16]);
        assert!(wide > small);
    }

    #[test]
    fn infer_cheaper_than_train() {
        let c = CostModel::default();
        let rows = [5000, 500];
        let dims = [64, 64, 16];
        assert!(c.infer_time(&rows, &dims) < c.train_time(&rows, &dims));
    }
}
