//! The explicit 10-stage SALIENT++ pipeline (Appendix D).
//!
//! [`crate::systems`] models batch preparation with five coarse stages;
//! this module wires the paper's full stage list onto the DES so the
//! per-stage structure (metadata round trips, the masked-selection
//! background thread, GPU-side slicing, the final permute) is visible:
//!
//! 1. obtain the next sampled minibatch (CPU sampler pool);
//! 2. all-to-all of send/receive *counts* (NIC, metadata);
//! 3. metadata transfer to the CPU to size tensors (copy engine);
//! 4. all-to-all of requested-node lists (NIC, 4 B/vertex);
//! 5. map global→local ids and device-to-host the request lists (copy);
//! 6. background CPU thread: masked selection + CPU-side slicing of
//!    requested + local + cached features (CPU);
//! 7. host-to-device of the stage-6 output (copy);
//! 8. GPU-side slicing of GPU-resident features and combine (GPU);
//! 9. all-to-all of the feature payloads (NIC);
//! 10. combine received features and permute to MFG order (GPU);
//!
//! then the training computation and gradient all-reduce follow.

use crate::cost::CostModel;
use crate::setup::DistributedSetup;
use crate::workload::{measure_epoch, BatchStats};
use spp_comm::{DesEngine, TaskId};
use spp_telemetry::stage::PipelineStage;

/// Per-stage busy time (seconds, summed over machines), covering the ten
/// Appendix-D stages plus training and the gradient all-reduce.
///
/// Stage identity comes from [`PipelineStage`] — the same enum that names
/// telemetry spans and DES task labels — so simulator accounting, trace
/// output, and metrics can never drift apart.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageBusy {
    busy: [f64; PipelineStage::COUNT],
}

impl StageBusy {
    /// Adds `seconds` of busy time to `stage`.
    pub fn add(&mut self, stage: PipelineStage, seconds: f64) {
        self.busy[stage.index()] += seconds;
    }

    /// Busy seconds of `stage`.
    pub fn get(&self, stage: PipelineStage) -> f64 {
        self.busy[stage.index()]
    }

    /// Busy seconds of Appendix-D stage `appendix` (1-based, `1..=10`);
    /// zero for indices outside that range.
    pub fn stage(&self, appendix: usize) -> f64 {
        PipelineStage::ALL
            .iter()
            .find(|s| s.appendix_stage() == Some(appendix))
            .map_or(0.0, |s| self.get(*s))
    }

    /// GPU training compute busy seconds.
    pub fn train(&self) -> f64 {
        self.get(PipelineStage::Train)
    }

    /// Gradient all-reduce busy seconds.
    pub fn allreduce(&self) -> f64 {
        self.get(PipelineStage::AllReduce)
    }

    /// Total busy seconds.
    pub fn total(&self) -> f64 {
        self.busy.iter().sum()
    }
}

/// Result of a detailed pipeline simulation.
#[derive(Clone, Debug)]
pub struct PipelineEpoch {
    /// Simulated per-epoch wall-clock.
    pub makespan: f64,
    /// Rounds in the epoch.
    pub rounds: usize,
    /// Per-stage busy time across machines.
    pub busy: StageBusy,
}

/// Simulates an epoch through the explicit 10-stage pipeline.
///
/// # Example
///
/// ```
/// use spp_graph::dataset::SyntheticSpec;
/// use spp_runtime::{CostModel, DistributedSetup, PipelineSim, SetupConfig};
/// use spp_sampler::Fanouts;
///
/// let ds = SyntheticSpec::new("d", 300, 8.0, 8, 4)
///     .split_fractions(0.2, 0.05, 0.05)
///     .seed(1)
///     .build();
/// let setup = DistributedSetup::build(&ds, SetupConfig {
///     num_machines: 2,
///     fanouts: Fanouts::new(vec![4, 3]),
///     batch_size: 16,
///     ..SetupConfig::default()
/// });
/// let e = PipelineSim::new(&setup, CostModel::mini_calibrated(), 32, 10)
///     .simulate_epoch(0);
/// assert!(e.makespan > 0.0);
/// ```
pub struct PipelineSim<'a> {
    setup: &'a DistributedSetup,
    cost: CostModel,
    hidden_dim: usize,
    depth: usize,
}

impl<'a> PipelineSim<'a> {
    /// Creates a simulator with the given pipeline depth (SALIENT++: 10).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(
        setup: &'a DistributedSetup,
        cost: CostModel,
        hidden_dim: usize,
        depth: usize,
    ) -> Self {
        assert!(depth > 0, "pipeline depth must be positive");
        Self {
            setup,
            cost,
            hidden_dim,
            depth,
        }
    }

    fn dims(&self) -> Vec<usize> {
        let l = self.setup.config.fanouts.num_hops();
        let mut dims = vec![self.setup.dataset.features.dim()];
        dims.extend(std::iter::repeat_n(self.hidden_dim, l - 1));
        dims.push(self.setup.dataset.num_classes);
        dims
    }

    /// Runs the simulation for one epoch.
    ///
    /// When telemetry is enabled ([`spp_telemetry::enabled`]) the DES
    /// task trace is replayed into the event log as virtual-time spans
    /// (one track per simulated resource), so `SPP_TRACE=1` runs show
    /// every Appendix-D stage on the Chrome-trace timeline. The trace is
    /// write-only: simulated times are never read back, so enabling it
    /// cannot perturb the computed epoch.
    pub fn simulate_epoch(&self, epoch: u64) -> PipelineEpoch {
        let _span = spp_telemetry::span!("runtime.pipeline.simulate_epoch");
        let k = self.setup.num_machines();
        let stats: Vec<Vec<BatchStats>> = measure_epoch(self.setup, false, epoch);
        let rounds = stats.iter().map(Vec::len).max().unwrap_or(0);
        let dims = self.dims();
        let d = self.setup.dataset.features.dim();
        let fb = 4.0 * d as f64;
        let grad_bytes = {
            let mut params = 0usize;
            for l in 0..dims.len() - 1 {
                params += 2 * dims[l] * dims[l + 1] + dims[l + 1];
            }
            params as f64 * 4.0 * (self.setup.config.batch_size as f64 / 1024.0).min(1.0)
        };

        let mut des = DesEngine::new();
        let emit_trace = spp_telemetry::enabled();
        if emit_trace {
            des.enable_trace();
        }
        let cpu: Vec<_> = (0..k)
            .map(|m| des.add_resource(&format!("cpu{m}")))
            .collect();
        let gpu: Vec<_> = (0..k)
            .map(|m| des.add_resource(&format!("gpu{m}")))
            .collect();
        let copy: Vec<_> = (0..k)
            .map(|m| des.add_resource(&format!("copy{m}")))
            .collect();
        let nic: Vec<_> = (0..k)
            .map(|m| des.add_resource(&format!("nic{m}")))
            .collect();
        let nic_grad: Vec<_> = (0..k)
            .map(|m| des.add_resource(&format!("nic-grad{m}")))
            .collect();
        // Metadata all-to-alls (stages 2 and 4) ride their own NCCL
        // channel; serializing them behind the payload transfers on one
        // NIC resource would triple-count the per-message latency.
        let nic_ctl: Vec<_> = (0..k)
            .map(|m| des.add_resource(&format!("nic-ctl{m}")))
            .collect();

        // GPU-side memory ops run ~20x faster than PCIe.
        let gpu_mem_rate = self.cost.pcie_bytes_per_sec * 20.0;
        let meta = |c: &CostModel| c.network.latency + c.comm_software_overhead;

        let mut busy = StageBusy::default();
        let mut done: Vec<Vec<TaskId>> = Vec::with_capacity(rounds);

        for r in 0..rounds {
            let served: Vec<usize> = (0..k)
                .map(|owner| {
                    (0..k)
                        .filter(|&j| j != owner)
                        .filter_map(|j| stats[j].get(r))
                        .map(|s| s.remote_per_owner[owner])
                        .sum()
                })
                .collect();

            // Stage 1: sampling, gated by pipeline depth.
            let mut s1: Vec<Option<TaskId>> = vec![None; k];
            for m in 0..k {
                let Some(s) = stats[m].get(r) else { continue };
                let mut deps = Vec::new();
                if r >= self.depth {
                    deps.push(done[r - self.depth][m]);
                }
                let dur = self.cost.sample_time(s.edges);
                busy.add(PipelineStage::Sample, dur);
                s1[m] = Some(des.submit_labeled(cpu[m], dur, &deps, PipelineStage::Sample.short()));
            }
            let all_s1: Vec<TaskId> = s1.iter().flatten().copied().collect();

            // Stage 2: all-to-all of counts (pure metadata; latency-bound).
            // Stage 3: metadata to CPU (one small PCIe transfer).
            // Stage 4: all-to-all of requested node lists.
            // Stage 5: map ids + D2H of received request lists.
            let mut s5: Vec<Option<TaskId>> = vec![None; k];
            for m in 0..k {
                let has_batch = stats[m].get(r).is_some();
                if !has_batch && served[m] == 0 {
                    continue;
                }
                let dur2 = meta(&self.cost);
                busy.add(PipelineStage::CountExchange, dur2);
                let deps2: Vec<TaskId> = match s1[m] {
                    Some(t) if has_batch => vec![t],
                    _ => all_s1.clone(),
                };
                let t2 = des.submit_labeled(
                    nic_ctl[m],
                    dur2,
                    &deps2,
                    PipelineStage::CountExchange.short(),
                );
                let dur3 = self.cost.pcie_time(64.0 * k as f64);
                busy.add(PipelineStage::MetaToHost, dur3);
                let t3 =
                    des.submit_labeled(copy[m], dur3, &[t2], PipelineStage::MetaToHost.short());
                let req_out = stats[m].get(r).map_or(0, |s| s.remote_total) as f64 * 4.0;
                let req_in = served[m] as f64 * 4.0;
                let dur4 = self.cost.exchange_time(req_out, req_in);
                busy.add(PipelineStage::RequestExchange, dur4);
                // Requests can only arrive once every peer has sampled.
                let mut deps4 = vec![t3];
                deps4.extend(&all_s1);
                let t4 = des.submit_labeled(
                    nic_ctl[m],
                    dur4,
                    &deps4,
                    PipelineStage::RequestExchange.short(),
                );
                let dur5 = self.cost.pcie_time(req_in);
                busy.add(PipelineStage::MapD2h, dur5);
                s5[m] =
                    Some(des.submit_labeled(copy[m], dur5, &[t4], PipelineStage::MapD2h.short()));
            }

            // Stage 6: background CPU thread — masked selection + CPU
            // slicing of served + local-CPU + cached rows.
            // Stage 7: H2D of the sliced host rows.
            // Stage 8: GPU slicing of GPU-resident rows + combine.
            // Stage 9: feature all-to-all.
            // Stage 10: combine + permute into MFG order.
            let mut s10: Vec<Option<TaskId>> = vec![None; k];
            let mut s8_serve: Vec<Option<TaskId>> = vec![None; k];
            for m in 0..k {
                let s = stats[m].get(r);
                if s.is_none() && served[m] == 0 {
                    continue;
                }
                let local_cpu = s.map_or(0, |s| s.local_cpu);
                let cached = s.map_or(0, |s| s.cached);
                let slice_rows = served[m] + local_cpu + cached;
                let dur6 = self.cost.slice_time(slice_rows, d) + 10e-6;
                busy.add(PipelineStage::HostSlice, dur6);
                let deps6: Vec<TaskId> = s5[m].into_iter().chain(s1[m]).collect();
                let t6 = des.submit_labeled(cpu[m], dur6, &deps6, PipelineStage::HostSlice.short());

                let h2d_rows = local_cpu + cached + served[m];
                let dur7 = self.cost.pcie_time(h2d_rows as f64 * fb);
                busy.add(PipelineStage::H2d, dur7);
                let t7 = des.submit_labeled(copy[m], dur7, &[t6], PipelineStage::H2d.short());

                let gpu_rows = s.map_or(0, |s| s.local_gpu);
                let dur8 = (gpu_rows + served[m]) as f64 * fb / gpu_mem_rate + 5e-6;
                busy.add(PipelineStage::GpuSlice, dur8);
                let t8 = des.submit_labeled(gpu[m], dur8, &[t7], PipelineStage::GpuSlice.short());
                s8_serve[m] = Some(t8);
                let _ = &t8;
                s10[m] = Some(t8); // placeholder; replaced after stage 9 below
            }
            // Stage 9 depends on every serving machine having staged its
            // payload (stage 8 output).
            let all_s8: Vec<TaskId> = s8_serve.iter().flatten().copied().collect();
            let mut train_tasks: Vec<Option<TaskId>> = vec![None; k];
            for m in 0..k {
                let Some(s) = stats[m].get(r) else { continue };
                let out = served[m] as f64 * fb;
                let inb = s.remote_total as f64 * fb;
                let t9 = if out > 0.0 || inb > 0.0 {
                    let dur9 = self.cost.exchange_time(out, inb);
                    busy.add(PipelineStage::FeatureExchange, dur9);
                    let mut deps9 = all_s8.clone();
                    deps9.extend(s10[m]);
                    Some(des.submit_labeled(
                        nic[m],
                        dur9,
                        &deps9,
                        PipelineStage::FeatureExchange.short(),
                    ))
                } else {
                    s10[m]
                };
                let total_rows = s.layer_rows[0];
                let dur10 = total_rows as f64 * fb * 2.0 / gpu_mem_rate + 5e-6;
                busy.add(PipelineStage::CombinePermute, dur10);
                let deps10: Vec<TaskId> = t9.into_iter().collect();
                let t10 = des.submit_labeled(
                    gpu[m],
                    dur10,
                    &deps10,
                    PipelineStage::CombinePermute.short(),
                );

                let dur_tr = self.cost.train_time(&s.layer_rows, &dims);
                busy.add(PipelineStage::Train, dur_tr);
                let mut deps_tr = vec![t10];
                if r > 0 {
                    deps_tr.push(done[r - 1][m]);
                }
                train_tasks[m] = Some(des.submit_labeled(
                    gpu[m],
                    dur_tr,
                    &deps_tr,
                    PipelineStage::Train.short(),
                ));
            }

            // Gradient all-reduce + round completion.
            let active: Vec<TaskId> = train_tasks.iter().flatten().copied().collect();
            let mut round_done = Vec::with_capacity(k);
            for m in 0..k {
                let end = match train_tasks[m] {
                    Some(_) if active.len() > 1 => {
                        let dur = self.cost.allreduce_time(active.len(), grad_bytes);
                        busy.add(PipelineStage::AllReduce, dur);
                        des.submit_labeled(
                            nic_grad[m],
                            dur,
                            &active,
                            PipelineStage::AllReduce.short(),
                        )
                    }
                    Some(t) => t,
                    None => s8_serve[m].unwrap_or_else(|| des.join(&[])),
                };
                round_done.push(des.join(&[end]));
            }
            done.push(round_done);
        }

        if emit_trace {
            for e in des.trace() {
                let track = spp_telemetry::sim_track(des.resource_name(e.resource));
                spp_telemetry::record_sim_span(track, e.label.clone(), e.start, e.end - e.start);
            }
        }

        PipelineEpoch {
            makespan: des.makespan(),
            rounds,
            busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SetupConfig;
    use crate::systems::{EpochSim, SystemSpec};
    use spp_core::policies::CachePolicy;
    use spp_graph::dataset::SyntheticSpec;
    use spp_sampler::Fanouts;

    fn setup(alpha: f64) -> DistributedSetup {
        let ds = SyntheticSpec::new("pipe", 3_000, 14.0, 32, 8)
            .split_fractions(0.1, 0.01, 0.02)
            .homophily(0.93)
            .degree_tail(1.2)
            .seed(4)
            .build();
        DistributedSetup::build(
            &ds,
            SetupConfig {
                num_machines: 4,
                fanouts: Fanouts::new(vec![10, 5]),
                batch_size: 8,
                policy: if alpha > 0.0 {
                    CachePolicy::VipAnalytic
                } else {
                    CachePolicy::None
                },
                alpha,
                beta: 0.5,
                vip_reorder: true,
                seed: 5,
                ..SetupConfig::default()
            },
        )
    }

    #[test]
    fn detailed_model_tracks_coarse_model() {
        // The 10-stage model carries the per-stage fixed costs (three
        // PCIe ops, two GPU kernels, three NIC messages per round) that
        // the coarse model fuses into single tasks. At mini scale those
        // fixed overheads are a large share of a ~100 µs round, so the
        // detailed model runs up to ~3x slower — which is precisely why
        // the real SALIENT++ fuses and pipelines these stages. The two
        // models must still agree within that fixed-cost envelope.
        let s = setup(0.3);
        let cost = CostModel::mini_calibrated();
        let detailed = PipelineSim::new(&s, cost, 64, 10).simulate_epoch(0);
        let coarse = EpochSim::new(&s, cost, SystemSpec::pipelined(64)).simulate_epoch(0);
        let ratio = detailed.makespan / coarse.makespan;
        assert!(
            (0.8..=3.5).contains(&ratio),
            "detailed {} vs coarse {} (ratio {ratio:.2})",
            detailed.makespan,
            coarse.makespan
        );
    }

    #[test]
    fn depth_one_is_slower_than_depth_ten() {
        let s = setup(0.3);
        let cost = CostModel::mini_calibrated();
        let d1 = PipelineSim::new(&s, cost, 64, 1).simulate_epoch(0);
        let d10 = PipelineSim::new(&s, cost, 64, 10).simulate_epoch(0);
        assert!(
            d1.makespan > d10.makespan,
            "{} vs {}",
            d1.makespan,
            d10.makespan
        );
    }

    #[test]
    fn caching_reduces_stage9_busy() {
        let cost = CostModel::mini_calibrated();
        let bare = setup(0.0);
        let cached = setup(0.5);
        let b = PipelineSim::new(&bare, cost, 64, 10).simulate_epoch(0);
        let c = PipelineSim::new(&cached, cost, 64, 10).simulate_epoch(0);
        assert!(
            c.busy.get(PipelineStage::FeatureExchange) < b.busy.get(PipelineStage::FeatureExchange),
            "feature all-to-all busy must drop: {} vs {}",
            b.busy.get(PipelineStage::FeatureExchange),
            c.busy.get(PipelineStage::FeatureExchange)
        );
    }

    #[test]
    fn busy_total_bounds_makespan_per_machine() {
        let s = setup(0.3);
        let cost = CostModel::mini_calibrated();
        let e = PipelineSim::new(&s, cost, 64, 10).simulate_epoch(0);
        assert!(e.makespan > 0.0);
        assert!(e.rounds > 0);
        // Makespan cannot exceed fully-serial execution.
        assert!(e.makespan <= e.busy.total() + 1e-9);
    }
}
