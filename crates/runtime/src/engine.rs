//! Correctness-grade distributed training on real threads.
//!
//! Machines are threads; features move through barriered all-to-all
//! exchanges (requests, then feature tensors), gradients are averaged by
//! an all-gather, and every machine applies identical optimizer steps to
//! its model replica — data-parallel training exactly as SALIENT++ runs
//! it over NCCL, minus the wire. Because real feature bytes flow through
//! the partitioned stores and caches, this engine *verifies* that the
//! paper's storage optimizations leave training semantics untouched.

use crate::pool::WorkerPool;
use crate::setup::DistributedSetup;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_comm::{run_machines, AllToAll};
use spp_gnn::metrics::{predictions, AccuracyMeter};
use spp_gnn::{Arch, GnnModel, MODEL_STREAM_SALT};
use spp_graph::{quant, FeatureMatrix, QuantScheme, VertexId};
use spp_sampler::{batch_stream_seed, Mfg, MinibatchIter, NodeWiseSampler};
use spp_telemetry::metrics::{self, Counter};
use spp_tensor::{Adam, Matrix, Optimizer};
use std::sync::Arc;

/// One all-to-all payload.
enum Payload {
    /// Feature requests: vertex ids owned by the receiver.
    Ids(Vec<VertexId>),
    /// Feature rows answering the receiver's request.
    Feats(FeatureMatrix),
    /// Flattened local gradients (all parameters concatenated).
    Grads(Vec<f32>),
    /// Nothing (idle machine / empty request).
    Empty,
}

/// Distributed training configuration.
#[derive(Clone, Debug)]
pub struct DistTrainConfig {
    /// Architecture.
    pub arch: Arch,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Epochs.
    pub epochs: usize,
    /// Model init / sampling seed.
    pub seed: u64,
    /// Precision of feature rows on the wire. Non-`F32` schemes shrink
    /// the per-pair comm counters and round every served remote row
    /// through the codec before the forward pass — the same rows on
    /// every machine, so replicas stay bit-identical to each other.
    pub wire_scheme: QuantScheme,
}

impl Default for DistTrainConfig {
    fn default() -> Self {
        Self {
            arch: Arch::Sage,
            hidden_dim: 32,
            lr: 0.005,
            epochs: 5,
            seed: 0,
            wire_scheme: QuantScheme::F32,
        }
    }
}

/// The outcome of a distributed training run.
#[derive(Clone, Debug)]
pub struct DistributedTrainReport {
    /// Mean per-round loss for each epoch (averaged over machines).
    pub epoch_losses: Vec<f64>,
    /// Validation accuracy of the final model (minibatch inference).
    pub val_accuracy: f64,
    /// Test accuracy of the final model.
    pub test_accuracy: f64,
    /// Remote vertices fetched over the run (communication actually
    /// performed, after the cache).
    pub remote_fetches: usize,
    /// Windowed communication matrix: one `machines × machines` window
    /// per epoch, `bytes[src][dst]` = bytes machine `src` sent to `dst`
    /// (requests + feature rows + gradients). Accumulated thread-locally
    /// per machine and merged after the join in rank order, so it is
    /// bit-identical across runs and never reads the (racy) telemetry
    /// counters.
    pub comm: spp_telemetry::CommReport,
}

/// Runs data-parallel GNN training over a [`DistributedSetup`].
pub struct DistributedTrainer<'a> {
    setup: &'a DistributedSetup,
    config: DistTrainConfig,
}

impl<'a> DistributedTrainer<'a> {
    /// Creates a trainer.
    pub fn new(setup: &'a DistributedSetup, config: DistTrainConfig) -> Self {
        Self { setup, config }
    }

    fn dims(&self) -> Vec<usize> {
        let l = self.setup.config.fanouts.num_hops();
        let mut dims = vec![self.setup.dataset.features.dim()];
        dims.extend(std::iter::repeat_n(self.config.hidden_dim, l - 1));
        dims.push(self.setup.dataset.num_classes);
        dims
    }

    /// Gathers one MFG's features on machine `rank`, using prefetched
    /// all-to-all responses.
    fn assemble(
        setup: &DistributedSetup,
        rank: usize,
        nodes: &[VertexId],
        responses: &mut [Option<FeatureMatrix>],
    ) -> Matrix {
        setup.stores[rank].gather(nodes, |owner, ids| {
            #[allow(clippy::expect_used)]
            let f = responses[owner as usize]
                .take()
                // spp-lint: allow(l1-no-panic): prefetch deposits one response per owner in the batch plan; a missing one is a protocol bug, not a runtime condition
                .expect("missing response from owner");
            assert_eq!(f.num_rows(), ids.len(), "response row count mismatch");
            f
        })
    }

    /// Runs the full training loop; returns the report and the final
    /// model (identical on all machines; machine 0's copy is returned).
    // spp-det(runtime.engine_train)
    pub fn train(&self) -> (DistributedTrainReport, GnnModel) {
        let k = self.setup.num_machines();
        let dims = self.dims();
        let rounds_per_epoch = self.setup.rounds_per_epoch();
        let requests_x = AllToAll::<Payload>::new(k);
        let feats_x = AllToAll::<Payload>::new(k);
        let grads_x = AllToAll::<Payload>::new(k);
        let setup = self.setup;
        let cfg = &self.config;
        // Per-machine-pair byte counters (Figure 1's comm-volume view).
        // Registered lazily only when telemetry is on, so disabled runs
        // never touch the registry. `Counter` is a Copy index; the matrix
        // is shared by reference across machine threads.
        let comm_counters: Option<Vec<Vec<Counter>>> = metrics::enabled().then(|| {
            (0..k)
                .map(|i| {
                    (0..k)
                        .map(|j| metrics::counter(&format!("comm.bytes.m{i}_to_m{j}")))
                        .collect()
                })
                .collect()
        });
        let comm_counters = &comm_counters;

        let mut results = run_machines(k, |rank| {
            let mut model = GnnModel::new(cfg.arch, &dims, cfg.seed);
            let mut opt = Adam::new(cfg.lr);
            let sampler = NodeWiseSampler::new(&setup.dataset.graph, setup.config.fanouts.clone());
            // Each machine thread gets an equal share of the global
            // worker budget for its own prefetch fan-out (K machines
            // already run concurrently).
            let pool = WorkerPool::global().split(k);
            // Per-round RNG streams are derived from
            // (machine seed, epoch, round), never threaded across
            // rounds: sampling for round r is independent of rounds
            // 0..r, which is what lets the epoch's MFGs be prefetched in
            // parallel below with identical results.
            let sample_seed = cfg.seed ^ ((rank as u64) << 32);
            let mut epoch_losses = Vec::with_capacity(cfg.epochs);
            let mut remote_fetches = 0usize;
            // Deterministic per-epoch send accounting for the comm
            // matrix: `sent[epoch * k + peer]` = bytes this machine sent
            // to `peer` in `epoch`. Thread-local, merged after the join
            // (never read from the racy telemetry counters).
            let mut sent = vec![0u64; cfg.epochs * k];

            for epoch in 0..cfg.epochs as u64 {
                let _epoch_span = spp_telemetry::span!("runtime.engine.epoch");
                let batches: Vec<Vec<VertexId>> = MinibatchIter::new(
                    &setup.local_train[rank],
                    setup.config.batch_size,
                    setup.config.seed ^ rank as u64,
                    epoch,
                )
                .collect();
                // Prefetch the whole epoch's MFGs on this machine's pool
                // share (sampling is the CPU-bound half of a round).
                let mut prefetched: std::vec::IntoIter<Mfg> = pool
                    .run_jobs(batches.len(), |b| {
                        let mut rng =
                            StdRng::seed_from_u64(batch_stream_seed(sample_seed, epoch, b as u64));
                        sampler.sample(&batches[b], &mut rng)
                    })
                    .into_iter();
                let mut loss_sum = 0.0f64;
                let mut loss_rounds = 0usize;
                for round in 0..rounds_per_epoch {
                    let mfg = prefetched.next();

                    // Phase 1: exchange feature requests.
                    let plan = mfg.as_ref().map(|m| setup.stores[rank].plan(&m.nodes));
                    let mut outgoing: Vec<Payload> = (0..k).map(|_| Payload::Empty).collect();
                    if let Some(p) = &plan {
                        remote_fetches += p.num_remote();
                        for (owner, reqs) in p.remote.iter().enumerate() {
                            if !reqs.is_empty() {
                                if let Some(cc) = comm_counters {
                                    cc[rank][owner].add(4 * reqs.len() as u64);
                                }
                                sent[epoch as usize * k + owner] += 4 * reqs.len() as u64;
                                outgoing[owner] =
                                    Payload::Ids(reqs.iter().map(|&(_, v)| v).collect());
                            }
                        }
                    }
                    let incoming = requests_x.exchange(rank, outgoing);

                    // Phase 2: serve and exchange features.
                    let responses: Vec<Payload> = incoming
                        .into_iter()
                        .enumerate()
                        .map(|(requester, msg)| match msg {
                            Payload::Ids(ids) => {
                                let mut f = setup.stores[rank].serve(&ids);
                                // Encode/decode at the owner: every
                                // requester receives identical decoded
                                // rows, keeping replicas in lockstep.
                                if cfg.wire_scheme != QuantScheme::F32 {
                                    for r in 0..f.num_rows() {
                                        quant::wire_roundtrip(
                                            f.row_mut(r as VertexId),
                                            cfg.wire_scheme,
                                        );
                                    }
                                }
                                let row_bytes = cfg.wire_scheme.row_bytes(f.dim());
                                if let Some(cc) = comm_counters {
                                    cc[rank][requester].add((f.num_rows() * row_bytes) as u64);
                                }
                                sent[epoch as usize * k + requester] +=
                                    (f.num_rows() * row_bytes) as u64;
                                Payload::Feats(f)
                            }
                            _ => Payload::Empty,
                        })
                        .collect();
                    let mut received: Vec<Option<FeatureMatrix>> = feats_x
                        .exchange(rank, responses)
                        .into_iter()
                        .map(|msg| match msg {
                            Payload::Feats(f) => Some(f),
                            _ => None,
                        })
                        .collect();

                    // Local compute: forward/backward.
                    let mut grads: Option<Vec<f32>> = None;
                    let mut loss_val = 0.0f64;
                    if let Some(m) = &mfg {
                        let x = Self::assemble(setup, rank, &m.nodes, &mut received);
                        let labels: Arc<Vec<u32>> = Arc::new(
                            m.seeds()
                                .iter()
                                .map(|&v| setup.dataset.labels[v as usize])
                                .collect(),
                        );
                        let mut model_rng = StdRng::seed_from_u64(batch_stream_seed(
                            sample_seed ^ MODEL_STREAM_SALT,
                            epoch,
                            round as u64,
                        ));
                        let mut fwd = model.forward(x, m, true, &mut model_rng);
                        let loss = fwd.tape.softmax_cross_entropy(fwd.logits, labels);
                        loss_val = fwd.tape.value(loss).get(0, 0) as f64;
                        fwd.tape.backward(loss);
                        model.accumulate_grads(&fwd);
                        let mut flat = Vec::new();
                        for p in model.params_mut() {
                            flat.extend_from_slice(p.grad.as_flat());
                            p.zero_grad();
                        }
                        grads = Some(flat);
                    }

                    // Phase 3: gradient all-gather + average + step.
                    let mut outgoing: Vec<Payload> = Vec::with_capacity(k);
                    for peer in 0..k {
                        outgoing.push(match &grads {
                            Some(g) => {
                                if peer != rank {
                                    if let Some(cc) = comm_counters {
                                        cc[rank][peer].add(4 * g.len() as u64);
                                    }
                                    sent[epoch as usize * k + peer] += 4 * g.len() as u64;
                                }
                                Payload::Grads(g.clone())
                            }
                            None => Payload::Empty,
                        });
                    }
                    let all_grads = grads_x.exchange(rank, outgoing);
                    let mut sum: Option<Vec<f32>> = None;
                    let mut contributors = 0usize;
                    for g in all_grads {
                        if let Payload::Grads(g) = g {
                            contributors += 1;
                            match &mut sum {
                                Some(s) => {
                                    for (a, b) in s.iter_mut().zip(&g) {
                                        *a += b;
                                    }
                                }
                                None => sum = Some(g),
                            }
                        }
                    }
                    if let Some(mut s) = sum {
                        let inv = 1.0 / contributors as f32;
                        for v in &mut s {
                            *v *= inv;
                        }
                        // Scatter the averaged gradient back into params.
                        let mut offset = 0usize;
                        let mut params = model.params_mut();
                        for p in params.iter_mut() {
                            let len = p.grad.as_flat().len();
                            p.grad
                                .as_flat_mut()
                                .copy_from_slice(&s[offset..offset + len]);
                            offset += len;
                        }
                        opt.step(&mut params);
                        if mfg.is_some() {
                            loss_sum += loss_val;
                            loss_rounds += 1;
                        }
                    }
                }
                epoch_losses.push(if loss_rounds > 0 {
                    loss_sum / loss_rounds as f64
                } else {
                    0.0
                });
            }
            (model, epoch_losses, remote_fetches, sent)
        });

        let remote_fetches: usize = results.iter().map(|(_, _, f, _)| *f).sum();
        // Merge the thread-local send tallies in rank order: one comm
        // window per epoch, bit-identical across runs.
        let mut comm = spp_telemetry::CommReport::with_windows("train", k, cfg.epochs, |e| {
            format!("epoch{e}")
        });
        for (rank, (_, _, _, sent)) in results.iter().enumerate() {
            for epoch in 0..cfg.epochs {
                for peer in 0..k {
                    let bytes = sent[epoch * k + peer];
                    if bytes > 0 {
                        comm.record(epoch, rank, peer, bytes);
                    }
                }
            }
        }
        if metrics::enabled() {
            spp_telemetry::publish_comm_report(comm.clone());
        }
        let (model, epoch_losses, _, _) = results.remove(0);

        let val_accuracy = self.evaluate(&model, &self.setup.dataset.split.val);
        let test_accuracy = self.evaluate(&model, &self.setup.dataset.split.test);
        (
            DistributedTrainReport {
                epoch_losses,
                val_accuracy,
                test_accuracy,
                remote_fetches,
                comm,
            },
            model,
        )
    }

    /// Minibatch-inference accuracy of `model` over `ids` (new-id space),
    /// evaluated centrally with the full reordered dataset.
    pub fn evaluate(&self, model: &GnnModel, ids: &[VertexId]) -> f64 {
        let ds = &self.setup.dataset;
        let sampler = NodeWiseSampler::new(&ds.graph, self.setup.config.fanouts.clone());
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xe7a1);
        let mut meter = AccuracyMeter::new();
        for batch in MinibatchIter::new(ids, self.setup.config.batch_size.max(64), 1, 0) {
            let mfg = sampler.sample(&batch, &mut rng);
            let f = ds.features.gather(&mfg.nodes);
            let x = Matrix::from_flat(mfg.num_nodes(), ds.features.dim(), f.as_flat().to_vec());
            let fwd = model.forward(x, &mfg, false, &mut rng);
            let preds = predictions(fwd.logits_value());
            let labels: Vec<u32> = mfg.seeds().iter().map(|&v| ds.labels[v as usize]).collect();
            meter.update(&preds, &labels);
        }
        meter.value()
    }

    /// Verifies that the distributed gather path (stores + caches +
    /// all-to-all) reproduces the global feature matrix exactly for one
    /// sampled batch per machine. Returns the number of vertices checked.
    pub fn verify_gather(&self, seed: u64) -> usize {
        let k = self.setup.num_machines();
        let setup = self.setup;
        let requests_x = AllToAll::<Payload>::new(k);
        let feats_x = AllToAll::<Payload>::new(k);
        let checked = run_machines(k, |rank| {
            let sampler = NodeWiseSampler::new(&setup.dataset.graph, setup.config.fanouts.clone());
            let mut rng = StdRng::seed_from_u64(seed ^ rank as u64);
            let batch: Vec<VertexId> = setup.local_train[rank]
                .iter()
                .take(setup.config.batch_size)
                .copied()
                .collect();
            let mfg = (!batch.is_empty()).then(|| sampler.sample(&batch, &mut rng));
            let plan = mfg.as_ref().map(|m| setup.stores[rank].plan(&m.nodes));
            let mut outgoing: Vec<Payload> = (0..k).map(|_| Payload::Empty).collect();
            if let Some(p) = &plan {
                for (owner, reqs) in p.remote.iter().enumerate() {
                    if !reqs.is_empty() {
                        outgoing[owner] = Payload::Ids(reqs.iter().map(|&(_, v)| v).collect());
                    }
                }
            }
            let incoming = requests_x.exchange(rank, outgoing);
            let responses: Vec<Payload> = incoming
                .into_iter()
                .map(|msg| match msg {
                    Payload::Ids(ids) => Payload::Feats(setup.stores[rank].serve(&ids)),
                    _ => Payload::Empty,
                })
                .collect();
            let mut received: Vec<Option<FeatureMatrix>> = feats_x
                .exchange(rank, responses)
                .into_iter()
                .map(|msg| match msg {
                    Payload::Feats(f) => Some(f),
                    _ => None,
                })
                .collect();
            let Some(m) = &mfg else { return 0 };
            let x = Self::assemble(setup, rank, &m.nodes, &mut received);
            for (i, &v) in m.nodes.iter().enumerate() {
                assert_eq!(
                    x.row(i),
                    setup.dataset.features.row(v),
                    "machine {rank}: gathered features differ at vertex {v}"
                );
            }
            m.nodes.len()
        });
        checked.into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SetupConfig;
    use spp_core::policies::CachePolicy;
    use spp_graph::dataset::SyntheticSpec;
    use spp_sampler::Fanouts;

    fn setup(k: usize, alpha: f64) -> DistributedSetup {
        let ds = SyntheticSpec::new("t", 800, 10.0, 12, 4)
            .split_fractions(0.4, 0.1, 0.1)
            .feature_signal(2.0)
            .homophily(0.9)
            .seed(11)
            .build();
        DistributedSetup::build(
            &ds,
            SetupConfig {
                num_machines: k,
                fanouts: Fanouts::new(vec![5, 5]),
                batch_size: 32,
                policy: if alpha > 0.0 {
                    CachePolicy::VipAnalytic
                } else {
                    CachePolicy::None
                },
                alpha,
                beta: 0.5,
                vip_reorder: true,
                seed: 12,
                ..SetupConfig::default()
            },
        )
    }

    #[test]
    fn gather_is_exact_with_and_without_cache() {
        for alpha in [0.0, 0.25] {
            let s = setup(3, alpha);
            let t = DistributedTrainer::new(&s, DistTrainConfig::default());
            let checked = t.verify_gather(99);
            assert!(checked > 100, "too few vertices verified: {checked}");
        }
    }

    #[test]
    fn distributed_training_learns() {
        let s = setup(2, 0.25);
        let t = DistributedTrainer::new(
            &s,
            DistTrainConfig {
                epochs: 6,
                lr: 0.01,
                ..DistTrainConfig::default()
            },
        );
        let (report, _) = t.train();
        assert_eq!(report.epoch_losses.len(), 6);
        assert!(
            report.epoch_losses.last().unwrap() < &report.epoch_losses[0],
            "loss should decrease: {:?}",
            report.epoch_losses
        );
        assert!(
            report.test_accuracy > 0.7,
            "test accuracy {} too low",
            report.test_accuracy
        );
    }

    #[test]
    fn caching_reduces_actual_fetches() {
        let cfg = DistTrainConfig {
            epochs: 2,
            ..DistTrainConfig::default()
        };
        let s0 = setup(3, 0.0);
        let (r0, _) = DistributedTrainer::new(&s0, cfg.clone()).train();
        let s1 = setup(3, 0.5);
        let (r1, _) = DistributedTrainer::new(&s1, cfg).train();
        assert!(
            r1.remote_fetches < r0.remote_fetches,
            "cache must cut real fetches: {} vs {}",
            r1.remote_fetches,
            r0.remote_fetches
        );
    }
}
