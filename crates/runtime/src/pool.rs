//! Re-export of the workspace worker pool (`spp-pool`).
//!
//! `spp_runtime::pool` is the sanctioned entry point for runtime-level
//! code: the engine, workload/volume measurement, and anything scheduling
//! concurrent work goes through [`WorkerPool`]. The implementation lives
//! in the foundational `spp-pool` crate so that `spp-core` and
//! `spp-tensor` (which `spp-runtime` depends on) can share the same pool
//! without a dependency cycle.

pub use spp_pool::{balanced_ranges, even_ranges, WorkerPool, MIN_COST_PER_JOB};
