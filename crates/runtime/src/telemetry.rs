//! The workspace observability layer (DESIGN.md §10).
//!
//! Thin re-export of [`spp_telemetry`] so downstream code and binaries
//! can reach the metrics registry, span guards, pipeline stage names,
//! and the `SPP_TRACE` exporters as `spp_runtime::telemetry::…` without
//! a separate dependency edge.

pub use spp_telemetry::*;
