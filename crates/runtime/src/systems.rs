//! Per-epoch timing simulation of the paper's system ladder.
//!
//! Each system variant is wired as a task graph on a
//! [`spp_comm::DesEngine`] with four serial resources per machine — CPU
//! (sampling + slicing), GPU compute, a PCIe copy engine, and the NIC —
//! reproducing the computation profiles of the paper's Figure 1:
//!
//! 1. **SALIENT (full replication)** — no feature communication; batch
//!    prep overlaps training through the pipeline.
//! 2. **+ Partitioned features** — per-batch all-to-all feature exchange,
//!    one batch in flight (communication exposed).
//! 3. **+ Pipelined communication** — same costs, up to
//!    [`SystemSpec::pipeline_depth`] batches in flight.
//! 4. **+ Feature caching** — the setup's cache shrinks the exchanged
//!    bytes; communication hides under compute.
//!
//! A DistDGL-like synchronous baseline (per-hop RPC sampling, no
//! pipelining, no cache, heavyweight communication layer) provides the
//! Table 4 comparison.

use crate::cost::CostModel;
use crate::setup::DistributedSetup;
use spp_comm::{DesEngine, TaskId};
use spp_telemetry::stage::PipelineStage;

/// Which system variant to simulate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemSpec {
    /// Replicate all features on every machine (no feature communication).
    pub full_replication: bool,
    /// Overlap batch preparation, communication, and training.
    pub pipelined: bool,
    /// Maximum batches in flight when pipelined (SALIENT++ uses 10).
    pub pipeline_depth: usize,
    /// Hidden-layer width (sets GPU FLOPs and gradient bytes).
    pub hidden_dim: usize,
    /// DistDGL-like overheads: per-hop RPC sampling latency (s).
    pub rpc_per_hop: f64,
    /// DistDGL-like extra software overhead per communication round (s).
    pub comm_overhead: f64,
    /// CPU sampling slowdown factor (DistDGL's sampler).
    pub sample_slowdown: f64,
}

impl SystemSpec {
    /// SALIENT: full replication, pipelined (Table 1 row 1).
    pub fn salient(hidden_dim: usize) -> Self {
        Self {
            full_replication: true,
            pipelined: true,
            pipeline_depth: 10,
            hidden_dim,
            rpc_per_hop: 0.0,
            comm_overhead: 0.0,
            sample_slowdown: 1.0,
        }
    }

    /// Partitioned features, bulk-synchronous communication (row 2).
    pub fn partitioned(hidden_dim: usize) -> Self {
        Self {
            full_replication: false,
            pipelined: false,
            pipeline_depth: 1,
            hidden_dim,
            rpc_per_hop: 0.0,
            comm_overhead: 0.0,
            sample_slowdown: 1.0,
        }
    }

    /// Partitioned + pipelined communication (row 3; row 4 = same spec
    /// with a caching setup).
    pub fn pipelined(hidden_dim: usize) -> Self {
        Self {
            pipelined: true,
            pipeline_depth: 10,
            ..Self::partitioned(hidden_dim)
        }
    }

    /// A DistDGL-like synchronous baseline (Table 4): per-hop RPC
    /// sampling against remote graph servers, no pipelining, heavyweight
    /// communication layer, slower sampler.
    pub fn distdgl(hidden_dim: usize) -> Self {
        Self {
            full_replication: false,
            pipelined: false,
            pipeline_depth: 1,
            hidden_dim,
            rpc_per_hop: 1.5e-3,
            comm_overhead: 2e-3,
            sample_slowdown: 2.5,
        }
    }
}

/// Busy-time sums per stage category, across machines (seconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Neighborhood sampling (MFG construction).
    pub sample: f64,
    /// Local + cached feature slicing.
    pub slice: f64,
    /// Slicing performed to serve peers' requests.
    pub serve: f64,
    /// Feature all-to-all communication.
    pub comm: f64,
    /// Host-to-device transfers.
    pub h2d: f64,
    /// GPU forward+backward.
    pub train: f64,
    /// Gradient all-reduce.
    pub allreduce: f64,
}

impl Breakdown {
    /// Total busy seconds across categories.
    pub fn total(&self) -> f64 {
        self.sample + self.slice + self.serve + self.comm + self.h2d + self.train + self.allreduce
    }
}

/// The result of simulating one epoch.
#[derive(Clone, Copy, Debug)]
pub struct EpochTime {
    /// Simulated wall-clock per-epoch time (slowest machine).
    pub makespan: f64,
    /// Rounds (distributed minibatches) in the epoch.
    pub rounds: usize,
    /// Completion time of the first round (pipeline fill / startup).
    pub startup: f64,
    /// Per-category busy time summed over machines.
    pub breakdown: Breakdown,
}

use crate::workload::{measure_epoch, BatchStats};

/// Simulates per-epoch time for a system variant over a deployment.
///
/// # Example
///
/// ```
/// use spp_graph::dataset::SyntheticSpec;
/// use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
/// use spp_sampler::Fanouts;
///
/// let ds = SyntheticSpec::new("d", 300, 8.0, 8, 4)
///     .split_fractions(0.2, 0.05, 0.05)
///     .seed(1)
///     .build();
/// let setup = DistributedSetup::build(&ds, SetupConfig {
///     num_machines: 2,
///     fanouts: Fanouts::new(vec![4, 3]),
///     batch_size: 16,
///     ..SetupConfig::default()
/// });
/// let sim = EpochSim::new(&setup, CostModel::mini_calibrated(), SystemSpec::pipelined(32));
/// let epoch = sim.simulate_epoch(0);
/// assert!(epoch.makespan > 0.0);
/// assert!(epoch.rounds > 0);
/// ```
pub struct EpochSim<'a> {
    setup: &'a DistributedSetup,
    cost: CostModel,
    spec: SystemSpec,
}

impl<'a> EpochSim<'a> {
    /// Creates a simulator.
    pub fn new(setup: &'a DistributedSetup, cost: CostModel, spec: SystemSpec) -> Self {
        Self { setup, cost, spec }
    }

    /// Model dims `[feature_dim, hidden…, classes]`.
    fn dims(&self) -> Vec<usize> {
        let l = self.setup.config.fanouts.num_hops();
        let mut dims = vec![self.setup.dataset.features.dim()];
        dims.extend(std::iter::repeat_n(self.spec.hidden_dim, l - 1));
        dims.push(self.setup.dataset.num_classes);
        dims
    }

    /// Gradient bytes for a GraphSAGE stack over `dims`, scaled by the
    /// ratio of the simulated batch size to the paper's per-GPU batch
    /// (1024). Model size does not shrink with the mini datasets, so
    /// without this the per-batch gradient-traffic-to-compute ratio would
    /// be inflated ~100x relative to the paper's testbed, making the
    /// all-reduce a phantom bottleneck.
    fn grad_bytes(&self, dims: &[usize]) -> f64 {
        const PAPER_BATCH: f64 = 1024.0;
        let mut params = 0usize;
        for l in 0..dims.len() - 1 {
            params += 2 * dims[l] * dims[l + 1] + dims[l + 1];
        }
        params as f64 * 4.0 * (self.setup.config.batch_size as f64 / PAPER_BATCH).min(1.0)
    }

    /// Samples the epoch's minibatch streams and measures workload
    /// quantities for every machine and round.
    fn measure(&self, epoch: u64) -> Vec<Vec<BatchStats>> {
        measure_epoch(self.setup, self.spec.full_replication, epoch)
    }

    /// Simulates one epoch and returns its timing.
    pub fn simulate_epoch(&self, epoch: u64) -> EpochTime {
        let stats = self.measure(epoch);
        self.simulate_impl(stats, false, false).0
    }

    /// Like [`EpochSim::simulate_epoch`] but also returns the task trace
    /// — `(machine resource name, stage label, start, end)` per task —
    /// for rendering Figure-1-style computation profiles.
    pub fn simulate_epoch_traced(
        &self,
        epoch: u64,
    ) -> (EpochTime, Vec<(String, String, f64, f64)>) {
        let stats = self.measure(epoch);
        let (time, trace) = self.simulate_impl(stats, false, true);
        (time, trace)
    }

    /// Simulates a minibatch-*inference* epoch over caller-supplied
    /// per-machine seed streams (e.g. validation or test vertices):
    /// forward pass only — no backward, no gradient all-reduce, no
    /// synchronous-SGD ordering between rounds (paper §2.4).
    pub fn simulate_inference_epoch(
        &self,
        streams: &[Vec<spp_graph::VertexId>],
        epoch: u64,
    ) -> EpochTime {
        let stats = crate::workload::measure_streams(
            self.setup,
            self.spec.full_replication,
            epoch,
            streams,
        );
        self.simulate_impl(stats, true, false).0
    }

    fn simulate_impl(
        &self,
        stats: Vec<Vec<BatchStats>>,
        inference: bool,
        trace: bool,
    ) -> (EpochTime, Vec<(String, String, f64, f64)>) {
        let k = self.setup.num_machines();
        let rounds = stats.iter().map(Vec::len).max().unwrap_or(0);
        let dims = self.dims();
        let d = self.setup.dataset.features.dim();
        let fb = 4.0 * d as f64;
        let grad_bytes = self.grad_bytes(&dims);
        let l = self.setup.config.fanouts.num_hops();

        let mut des = DesEngine::new();
        if trace {
            des.enable_trace();
        }
        let cpu: Vec<_> = (0..k)
            .map(|m| des.add_resource(&format!("cpu{m}")))
            .collect();
        let gpu: Vec<_> = (0..k)
            .map(|m| des.add_resource(&format!("gpu{m}")))
            .collect();
        let copy: Vec<_> = (0..k)
            .map(|m| des.add_resource(&format!("copy{m}")))
            .collect();
        let nic: Vec<_> = (0..k)
            .map(|m| des.add_resource(&format!("nic{m}")))
            .collect();
        // Gradient all-reduces ride a separate NCCL stream; modeling them
        // on their own resource keeps a pending all-reduce (waiting on
        // peers' GPUs) from falsely blocking the next round's feature
        // exchange on the wire.
        let nic_grad: Vec<_> = (0..k)
            .map(|m| des.add_resource(&format!("nic-grad{m}")))
            .collect();

        let mut bd = Breakdown::default();
        // done[r][m]: the synchronization task ending machine m's round r.
        let mut done: Vec<Vec<TaskId>> = Vec::with_capacity(rounds);
        let mut startup = 0.0f64;
        let depth = if self.spec.pipelined {
            self.spec.pipeline_depth.max(1)
        } else {
            1
        };

        for r in 0..rounds {
            // Served rows per machine this round.
            let served: Vec<usize> = (0..k)
                .map(|owner| {
                    (0..k)
                        .filter(|&j| j != owner)
                        .filter_map(|j| stats[j].get(r))
                        .map(|s| s.remote_per_owner[owner])
                        .sum()
                })
                .collect();

            // Pass 1: sampling (plus DistDGL RPC) for every machine.
            let mut sample_tasks: Vec<Option<TaskId>> = vec![None; k];
            for m in 0..k {
                let Some(s) = stats[m].get(r) else { continue };
                let mut deps: Vec<TaskId> = Vec::new();
                if r >= depth {
                    deps.push(done[r - depth][m]);
                }
                if self.spec.rpc_per_hop > 0.0 {
                    let rpc = des.submit(nic[m], self.spec.rpc_per_hop * l as f64, &deps);
                    bd.comm += self.spec.rpc_per_hop * l as f64;
                    deps.push(rpc);
                }
                let dur = self.cost.sample_time(s.edges) * self.spec.sample_slowdown;
                bd.sample += dur;
                sample_tasks[m] =
                    Some(des.submit_labeled(cpu[m], dur, &deps, PipelineStage::Sample.short()));
            }
            let all_samples: Vec<TaskId> = sample_tasks.iter().flatten().copied().collect();

            // Pass 2: serve, slice, comm, h2d, train.
            let mut train_tasks: Vec<Option<TaskId>> = vec![None; k];
            let mut serve_tasks: Vec<Option<TaskId>> = vec![None; k];
            for m in 0..k {
                if served[m] > 0 {
                    let dur = self.cost.slice_time(served[m], d);
                    bd.serve += dur;
                    // "serve" is this coarse model's own subdivision of
                    // Appendix-D stage 6 (slicing done on behalf of
                    // peers); it has no PipelineStage variant on purpose.
                    serve_tasks[m] = Some(des.submit_labeled(cpu[m], dur, &all_samples, "serve"));
                }
            }
            for m in 0..k {
                let Some(s) = stats[m].get(r) else { continue };
                let Some(sample) = sample_tasks[m] else {
                    debug_assert!(false, "machine with batch sampled");
                    continue;
                };
                let slice_rows = s.local_cpu + s.cached;
                let slice = if slice_rows > 0 {
                    let dur = self.cost.slice_time(slice_rows, d);
                    bd.slice += dur;
                    Some(des.submit_labeled(
                        cpu[m],
                        dur,
                        &[sample],
                        PipelineStage::HostSlice.short(),
                    ))
                } else {
                    None
                };
                let comm = if s.remote_total > 0 || served[m] > 0 {
                    let out = served[m] as f64 * fb + s.remote_total as f64 * 4.0;
                    let inb = s.remote_total as f64 * fb + served[m] as f64 * 4.0;
                    let dur = self.cost.exchange_time(out, inb) + self.spec.comm_overhead;
                    bd.comm += dur;
                    let mut deps: Vec<TaskId> = vec![sample];
                    deps.extend(serve_tasks.iter().flatten().copied());
                    Some(des.submit_labeled(
                        nic[m],
                        dur,
                        &deps,
                        PipelineStage::FeatureExchange.short(),
                    ))
                } else {
                    None
                };
                let h2d_rows = s.local_cpu + s.cached + s.remote_total;
                let h2d = if h2d_rows > 0 {
                    let dur = self.cost.pcie_time(h2d_rows as f64 * fb);
                    bd.h2d += dur;
                    let deps: Vec<TaskId> = [slice, comm].into_iter().flatten().collect();
                    let deps = if deps.is_empty() { vec![sample] } else { deps };
                    Some(des.submit_labeled(copy[m], dur, &deps, PipelineStage::H2d.short()))
                } else {
                    None
                };
                let dur = if inference {
                    self.cost.infer_time(&s.layer_rows, &dims)
                } else {
                    self.cost.train_time(&s.layer_rows, &dims)
                };
                bd.train += dur;
                let mut deps: Vec<TaskId> =
                    [h2d.or(slice).or(comm)].into_iter().flatten().collect();
                if deps.is_empty() {
                    deps.push(sample);
                }
                if r > 0 && !inference {
                    // Synchronous SGD: step r-1 must be applied first.
                    deps.push(done[r - 1][m]);
                }
                train_tasks[m] =
                    Some(des.submit_labeled(gpu[m], dur, &deps, PipelineStage::Train.short()));
            }

            // Pass 3: gradient all-reduce across the machines active this
            // round, then per-machine round completion.
            let active: Vec<TaskId> = train_tasks.iter().flatten().copied().collect();
            let active_count = active.len();
            let mut round_done: Vec<TaskId> = Vec::with_capacity(k);
            for m in 0..k {
                let end = match train_tasks[m] {
                    Some(_) if active_count > 1 && !inference => {
                        let dur = self.cost.allreduce_time(active_count, grad_bytes);
                        bd.allreduce += dur;
                        des.submit_labeled(
                            nic_grad[m],
                            dur,
                            &active,
                            PipelineStage::AllReduce.short(),
                        )
                    }
                    Some(t) => t,
                    // Idle machine: its round ends when it finishes serving.
                    None => serve_tasks[m].unwrap_or_else(|| des.join(&[])),
                };
                round_done.push(des.join(&[end]));
            }
            if r == 0 {
                startup = round_done
                    .iter()
                    .map(|&t| des.completion(t))
                    .fold(0.0f64, f64::max);
            }
            done.push(round_done);
        }

        let trace_out: Vec<(String, String, f64, f64)> = des
            .trace()
            .iter()
            .map(|e| {
                (
                    des.resource_name(e.resource).to_string(),
                    e.label.clone(),
                    e.start,
                    e.end,
                )
            })
            .collect();
        (
            EpochTime {
                makespan: des.makespan(),
                rounds,
                startup,
                breakdown: bd,
            },
            trace_out,
        )
    }

    /// Mean per-epoch time over `epochs` simulated epochs.
    pub fn mean_epoch_time(&self, epochs: usize) -> f64 {
        (0..epochs)
            .map(|e| self.simulate_epoch(e as u64).makespan)
            .sum::<f64>()
            / epochs.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SetupConfig;
    use spp_core::policies::CachePolicy;
    use spp_graph::dataset::SyntheticSpec;
    use spp_graph::Dataset;
    use spp_sampler::Fanouts;

    fn ds() -> Dataset {
        SyntheticSpec::new("t", 1200, 12.0, 16, 4)
            .split_fractions(0.4, 0.05, 0.05)
            .seed(3)
            .build()
    }

    fn cfg(k: usize, policy: CachePolicy, alpha: f64) -> SetupConfig {
        SetupConfig {
            num_machines: k,
            fanouts: Fanouts::new(vec![5, 5]),
            batch_size: 24,
            policy,
            alpha,
            beta: 1.0,
            vip_reorder: true,
            seed: 9,
            ..SetupConfig::default()
        }
    }

    #[test]
    fn system_ladder_ordering() {
        let ds = ds();
        let cached = DistributedSetup::build(&ds, cfg(4, CachePolicy::VipAnalytic, 0.3));
        let bare = DistributedSetup::build(&ds, cfg(4, CachePolicy::None, 0.0));
        let cost = CostModel::default();
        let h = 32;

        let t_full = EpochSim::new(&bare, cost, SystemSpec::salient(h)).simulate_epoch(0);
        let t_part = EpochSim::new(&bare, cost, SystemSpec::partitioned(h)).simulate_epoch(0);
        let t_pipe = EpochSim::new(&bare, cost, SystemSpec::pipelined(h)).simulate_epoch(0);
        let t_spp = EpochSim::new(&cached, cost, SystemSpec::pipelined(h)).simulate_epoch(0);

        // Table 1's ordering: partitioned slowest, pipelining helps,
        // caching + pipelining approaches full replication.
        assert!(
            t_part.makespan > t_pipe.makespan,
            "pipelining must help: {} vs {}",
            t_part.makespan,
            t_pipe.makespan
        );
        assert!(
            t_pipe.makespan > t_spp.makespan,
            "caching must help: {} vs {}",
            t_pipe.makespan,
            t_spp.makespan
        );
        assert!(
            t_spp.makespan < t_full.makespan * 1.6,
            "SALIENT++ should approach full replication: {} vs {}",
            t_spp.makespan,
            t_full.makespan
        );
    }

    #[test]
    fn full_replication_has_no_comm() {
        let ds = ds();
        let s = DistributedSetup::build(&ds, cfg(2, CachePolicy::None, 0.0));
        let t = EpochSim::new(&s, CostModel::default(), SystemSpec::salient(32)).simulate_epoch(0);
        assert_eq!(t.breakdown.comm, 0.0);
        assert_eq!(t.breakdown.serve, 0.0);
        assert!(t.breakdown.allreduce > 0.0);
    }

    #[test]
    fn distdgl_slower_than_salient_pp() {
        let ds = ds();
        let cached = DistributedSetup::build(&ds, cfg(4, CachePolicy::VipAnalytic, 0.3));
        let bare = DistributedSetup::build(&ds, cfg(4, CachePolicy::None, 0.0));
        let cost = CostModel::default();
        let spp = EpochSim::new(&cached, cost, SystemSpec::pipelined(32)).simulate_epoch(0);
        let dgl = EpochSim::new(&bare, cost, SystemSpec::distdgl(32)).simulate_epoch(0);
        assert!(
            dgl.makespan > 3.0 * spp.makespan,
            "DistDGL-like should be much slower: {} vs {}",
            dgl.makespan,
            spp.makespan
        );
    }

    #[test]
    fn more_machines_scale_down_epoch_time() {
        let ds = ds();
        let cost = CostModel::default();
        let t2 = EpochSim::new(
            &DistributedSetup::build(&ds, cfg(2, CachePolicy::VipAnalytic, 0.2)),
            cost,
            SystemSpec::pipelined(32),
        )
        .simulate_epoch(0);
        let t4 = EpochSim::new(
            &DistributedSetup::build(&ds, cfg(4, CachePolicy::VipAnalytic, 0.2)),
            cost,
            SystemSpec::pipelined(32),
        )
        .simulate_epoch(0);
        assert!(
            t4.makespan < t2.makespan,
            "scaling 2→4 machines must reduce epoch time: {} vs {}",
            t2.makespan,
            t4.makespan
        );
    }

    #[test]
    fn makespan_at_least_gpu_busy_per_machine() {
        let ds = ds();
        let s = DistributedSetup::build(&ds, cfg(2, CachePolicy::VipAnalytic, 0.2));
        let t =
            EpochSim::new(&s, CostModel::default(), SystemSpec::pipelined(32)).simulate_epoch(0);
        // Total GPU busy across 2 machines / 2 is a lower bound.
        assert!(t.makespan >= t.breakdown.train / 2.0 - 1e-9);
        assert!(t.startup > 0.0 && t.startup <= t.makespan);
    }

    #[test]
    fn inference_epoch_is_cheaper_than_training() {
        let ds = ds();
        let s = DistributedSetup::build(&ds, cfg(4, CachePolicy::VipAnalytic, 0.2));
        let sim = EpochSim::new(&s, CostModel::default(), SystemSpec::pipelined(32));
        let train = sim.simulate_epoch(0);
        // Infer over the same seed streams for a like-for-like comparison.
        let infer = sim.simulate_inference_epoch(&s.local_train, 0);
        assert_eq!(infer.breakdown.allreduce, 0.0);
        assert!(
            infer.makespan < train.makespan,
            "inference {} should beat training {}",
            infer.makespan,
            train.makespan
        );
        assert!(infer.breakdown.train < train.breakdown.train);
    }

    #[test]
    fn inference_over_test_split_runs() {
        let ds = ds();
        let s = DistributedSetup::build(&ds, cfg(2, CachePolicy::VipAnalytic, 0.2));
        // Route each (new-id) test vertex to its owning machine's stream.
        let mut streams: Vec<Vec<spp_graph::VertexId>> = vec![Vec::new(); 2];
        for &v in &s.dataset.split.test {
            streams[s.layout.owner_of(v) as usize].push(v);
        }
        let sim = EpochSim::new(&s, CostModel::default(), SystemSpec::pipelined(32));
        let e = sim.simulate_inference_epoch(&streams, 0);
        assert!(e.makespan > 0.0 && e.rounds > 0);
    }

    #[test]
    fn deterministic_simulation() {
        let ds = ds();
        let s = DistributedSetup::build(&ds, cfg(2, CachePolicy::VipAnalytic, 0.2));
        let sim = EpochSim::new(&s, CostModel::default(), SystemSpec::pipelined(32));
        let a = sim.simulate_epoch(1);
        let b = sim.simulate_epoch(1);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.breakdown, b.breakdown);
    }
}
