//! The SALIENT++ distributed training runtime.
//!
//! Ties every substrate together:
//!
//! - [`setup`] — builds a distributed deployment from a dataset: METIS-style
//!   partitioning, per-partition VIP analysis, two-level reordering,
//!   VIP-ranked caches, and per-machine feature stores.
//! - [`volume`] — measures per-epoch remote communication volume for any
//!   caching policy (the Figure 2 experiment), by counting real sampled
//!   accesses.
//! - [`cost`] — the machine cost model (CPU sampling, feature slicing,
//!   PCIe transfers, GPU compute, NIC) used by timing simulations.
//! - [`systems`] — per-epoch time estimation via discrete-event simulation
//!   for the paper's system ladder: SALIENT full replication → partitioned
//!   features → pipelined communication → VIP caching (Table 1, Figures
//!   4–9), plus a DistDGL-like synchronous baseline (Table 4).
//! - [`engine`] — correctness-grade distributed training on real threads
//!   with all-to-all feature exchange and gradient averaging; verifies
//!   that partitioned+cached execution matches single-machine training.
//! - [`telemetry`] — the workspace observability layer (re-export of
//!   `spp-telemetry`): metrics registry, scoped spans, and the
//!   `SPP_TRACE` Chrome-trace/JSONL exporters (DESIGN.md §10).

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]
// Index-based loops over multiple parallel arrays are used deliberately
// throughout (CSR sweeps, per-partition load vectors); iterator zips would
// obscure which array drives the bound.
#![allow(clippy::needless_range_loop)]

pub mod cost;
pub mod engine;
pub mod pipeline;
pub mod pool;
pub mod setup;
pub mod systems;
pub mod telemetry;
pub mod volume;
pub mod workload;

pub use cost::CostModel;
pub use engine::{DistTrainConfig, DistributedTrainReport, DistributedTrainer};
pub use pipeline::{PipelineEpoch, PipelineSim, StageBusy};
pub use pool::WorkerPool;
pub use setup::{DistributedSetup, SetupConfig};
pub use systems::{EpochSim, EpochTime, SystemSpec};
pub use volume::{AccessCounts, CommVolume};
