//! Determinism guard for telemetry: turning the recorder on must not
//! change any computed result (DESIGN.md §9 bit-identity, §10
//! constraint 2). Recording only writes to metric shards and the event
//! ring — nothing flows back into the computation — so VIP partition
//! scores and trainer losses must be bit-identical with tracing on and
//! off. `SPP_TRACE=1` routes through the same `set_enabled` switch this
//! test toggles (`init_from_env`), so this pins the env-knob path too.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_core::policies::CachePolicy;
use spp_core::{SweepStrategy, VipModel};
use spp_graph::dataset::{Dataset, SyntheticSpec};
use spp_graph::VertexId;
use spp_runtime::pool::WorkerPool;
use spp_runtime::{DistTrainConfig, DistributedSetup, DistributedTrainer, SetupConfig};
use spp_sampler::Fanouts;
use spp_telemetry as tel;

fn tiny_ds() -> Dataset {
    SyntheticSpec::new("t", 600, 10.0, 8, 4)
        .split_fractions(0.3, 0.1, 0.1)
        .seed(7)
        .build()
}

/// Per-partition VIP scores over a 3-way split of the training set,
/// on a multi-worker pool (the path `cargo xtask lint` rule L6 and the
/// caching policy exercise).
fn vip_scores(ds: &Dataset) -> Vec<Vec<f64>> {
    let parts: Vec<Vec<VertexId>> = (0..3)
        .map(|m| {
            ds.split
                .train
                .iter()
                .copied()
                .filter(|v| (*v as usize) % 3 == m)
                .collect()
        })
        .collect();
    VipModel::new(Fanouts::new(vec![4, 3]), 16).partition_scores_with(
        WorkerPool::new(4),
        &ds.graph,
        &parts,
        SweepStrategy::Auto,
    )
}

/// A short distributed-training run; returns per-epoch mean losses.
fn train_losses(ds: &Dataset) -> Vec<f64> {
    let setup = DistributedSetup::build(
        ds,
        SetupConfig {
            num_machines: 3,
            fanouts: Fanouts::new(vec![4, 3]),
            batch_size: 16,
            policy: CachePolicy::VipAnalytic,
            alpha: 0.2,
            beta: 0.5,
            ..SetupConfig::default()
        },
    );
    let trainer = DistributedTrainer::new(
        &setup,
        DistTrainConfig {
            hidden_dim: 8,
            epochs: 2,
            seed: 1,
            ..DistTrainConfig::default()
        },
    );
    trainer.train().0.epoch_losses
}

fn bits2(m: &[Vec<f64>]) -> Vec<Vec<u64>> {
    m.iter()
        .map(|r| r.iter().map(|x| x.to_bits()).collect())
        .collect()
}

#[test]
fn tracing_on_and_off_are_bit_identical() {
    let ds = tiny_ds();

    tel::set_enabled(false);
    let scores_off = vip_scores(&ds);
    let losses_off = train_losses(&ds);

    tel::set_enabled(true);
    let scores_on = vip_scores(&ds);
    let losses_on = train_losses(&ds);
    tel::set_enabled(false);

    // The traced run actually recorded something — otherwise this test
    // would pass vacuously with a broken recorder.
    assert!(
        tel::snapshot()
            .counters
            .iter()
            .any(|(name, v)| name.starts_with("comm.bytes.") && *v > 0),
        "traced run recorded no comm volume"
    );

    assert_eq!(
        bits2(&scores_off),
        bits2(&scores_on),
        "VIP partition scores changed when tracing was enabled"
    );
    let off: Vec<u64> = losses_off.iter().map(|l| l.to_bits()).collect();
    let on: Vec<u64> = losses_on.iter().map(|l| l.to_bits()).collect();
    assert_eq!(off, on, "trainer losses changed when tracing was enabled");
}
