//! Bit-identity of deployment assembly through the `FeatureStore`
//! trait: `DistributedSetup::build_with_feature_store` with a lossless
//! f32 store (original-id order) must produce the same deployment as
//! the historical `build` path — same layout, same caches, same served
//! feature rows to the bit, same memory footprint.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_graph::dataset::SyntheticSpec;
use spp_graph::{Dataset, QuantScheme, VertexId};
use spp_runtime::{DistributedSetup, SetupConfig};
use spp_sampler::Fanouts;
use spp_store::{InRamStore, MmapStore, StoreBuilder};

fn fixture() -> (Dataset, SetupConfig) {
    let ds = SyntheticSpec::new("store-setup", 500, 8.0, 8, 4)
        .split_fractions(0.3, 0.1, 0.1)
        .seed(7)
        .build();
    let cfg = SetupConfig {
        num_machines: 3,
        fanouts: Fanouts::new(vec![4, 3]),
        alpha: 0.15,
        ..SetupConfig::default()
    };
    (ds, cfg)
}

fn assert_setups_identical(a: &DistributedSetup, b: &DistributedSetup, what: &str) {
    assert_eq!(a.local_train, b.local_train, "{what}: local train sets");
    assert_eq!(
        a.dataset.features.as_flat(),
        b.dataset.features.as_flat(),
        "{what}: reordered features"
    );
    assert!(
        (a.memory_multiple() - b.memory_multiple()).abs() == 0.0,
        "{what}: memory multiple {} != {}",
        a.memory_multiple(),
        b.memory_multiple()
    );
    assert_eq!(a.stores.len(), b.stores.len(), "{what}: machine count");
    let n = a.dataset.graph.num_vertices() as VertexId;
    // Probe a spread of new-id rows through every machine's store
    // (serve only answers for local vertices); the static-cache fill
    // and the cold path must both produce identical bits.
    for (p, (sa, sb)) in a.stores.iter().zip(&b.stores).enumerate() {
        assert_eq!(
            sa.cache().members(),
            sb.cache().members(),
            "{what}: cache {p}"
        );
        assert_eq!(sa.cache_scheme(), sb.cache_scheme(), "{what}: scheme {p}");
        let probe: Vec<VertexId> = (0..n)
            .step_by(7)
            .filter(|&v| a.layout.is_local(v, p as u32))
            .collect();
        assert!(!probe.is_empty(), "{what}: no local probe ids for {p}");
        let ra = sa.serve(&probe);
        let rb = sb.serve(&probe);
        for (i, &v) in probe.iter().enumerate() {
            let bits = |row: &[f32]| row.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(ra.row(i as VertexId)),
                bits(rb.row(i as VertexId)),
                "{what}: machine {p} row {v}"
            );
        }
    }
}

/// An f32 `InRamStore` over the original-order feature matrix feeds
/// `assemble` the same bits as the matrix itself, so the whole
/// deployment — caches, quantized tiers, reordered dataset — matches.
#[test]
fn setup_through_inram_store_matches_build() {
    let (ds, cfg) = fixture();
    let baseline = DistributedSetup::build(&ds, cfg.clone());
    let store = InRamStore::from_matrix(&ds.features, QuantScheme::F32, 4096);
    let through = DistributedSetup::build_with_feature_store(&ds, cfg, &store);
    assert_setups_identical(&baseline, &through, "inram/f32");
}

/// Same contract with the features living on disk: the store pages are
/// written once by `StoreBuilder` and every cache fill reads through
/// `MmapStore` positioned reads.
#[test]
fn setup_through_mmap_store_matches_build() {
    let (ds, cfg) = fixture();
    let baseline = DistributedSetup::build(&ds, cfg.clone());

    let dir = std::env::temp_dir().join(format!("spp_runtime_store_setup_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    StoreBuilder::new(QuantScheme::F32)
        .page_bytes(2048)
        .build_from_matrix(&dir, &ds.features, None)
        .unwrap();
    let store = MmapStore::open(&dir).unwrap();
    let through = DistributedSetup::build_with_feature_store(&ds, cfg, &store);
    let stats = spp_store::FeatureStore::stats(&store);
    std::fs::remove_dir_all(&dir).unwrap();

    assert_setups_identical(&baseline, &through, "mmap/f32");
    assert!(
        stats.pages_read > 0,
        "assembly never read through the store"
    );
}
