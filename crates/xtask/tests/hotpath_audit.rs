//! End-to-end tests for `cargo xtask audit-hotpaths`, driven through
//! the compiled binary against checked-in fixture trees (`--dir` points
//! the walker at a miniature workspace, so the real repository's roots
//! and baseline never leak into the assertions).

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture_root(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

fn audit(dir: &str, extra: &[&str]) -> Output {
    let mut args = vec!["audit-hotpaths", "--dir", dir];
    args.extend_from_slice(extra);
    Command::new(env!("CARGO_BIN_EXE_spp-xtask"))
        .args(args)
        .output()
        .expect("spawn spp-xtask")
}

#[test]
fn clean_tree_passes_with_escapes_inventoried() {
    let out = audit(&fixture_root("hotpath_tree_ok"), &[]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "expected clean audit, got:\n{text}");
    // One root; its whole reachable set (step, accumulate, gather_row,
    // render) is attributed to it.
    assert!(
        text.contains("root fixture.step = step (crates/core/src/pipeline.rs:7): 4 reachable"),
        "{text}"
    );
    assert!(text.contains("0 finding(s)"), "{text}");
    // Annotated allocations are inventoried, not flagged.
    assert!(
        text.contains("escape [h1-alloc] output row, sized once per call"),
        "{text}"
    );
    assert!(
        text.contains("escape [h1-alloc] capacity reserved above"),
        "{text}"
    );
    // The cold boundary is recorded but its format! is never checked.
    assert!(
        text.contains("stop render (crates/core/src/pipeline.rs): report assembly"),
        "{text}"
    );
}

#[test]
fn seeded_transitive_unwrap_is_caught_two_calls_below_root() {
    let out = audit(&fixture_root("hotpath_tree_bad"), &[]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(!out.status.success(), "seeded violations must fail");
    // The unwrap lives in `head`, reached root -> stage_batch -> head.
    assert!(
        text.contains("crates/core/src/pipeline.rs:22: [h2-panic] in `head` (via fixture.ingest)"),
        "{text}"
    );
    assert!(
        text.contains(
            "`.unwrap()` can panic on a hot path (reached from root `fixture.ingest` at depth 2)"
        ),
        "{text}"
    );
}

#[test]
fn seeded_unannotated_push_is_caught_across_crates() {
    let out = audit(&fixture_root("hotpath_tree_bad"), &[]);
    let text = String::from_utf8(out.stdout).unwrap();
    // The push lives in crates/util, reached from the root in
    // crates/core via a bare-name cross-crate edge.
    assert!(
        text.contains("crates/util/src/lib.rs:8: [h1-alloc] in `grow` (via fixture.ingest)"),
        "{text}"
    );
    assert!(
        text.contains(
            "`.push(` allocates on a hot path (reached from root `fixture.ingest` at depth 2)"
        ),
        "{text}"
    );
    // The identical push in the never-reached `cold_rebuild` is silent.
    assert!(!text.contains("cold_rebuild"), "{text}");
}

#[test]
fn stale_escape_and_blocking_leaf_are_flagged() {
    let out = audit(&fixture_root("hotpath_tree_bad"), &[]);
    let text = String::from_utf8(out.stdout).unwrap();
    // The allow(h1-alloc) on a non-allocating line is itself a finding.
    assert!(
        text.contains("crates/core/src/pipeline.rs:20: [hot-annotation]"),
        "{text}"
    );
    assert!(text.contains("stale escape"), "{text}");
    // The second root's lock().unwrap() trips H3 and H2 on one line.
    assert!(
        text.contains(
            "crates/core/src/pipeline.rs:32: [h3-lock] in `drain_len` (via fixture.flush)"
        ),
        "{text}"
    );
    assert!(
        text.contains(
            "crates/core/src/pipeline.rs:32: [h2-panic] in `drain_len` (via fixture.flush)"
        ),
        "{text}"
    );
}

#[test]
fn root_filter_restricts_traversal() {
    let out = audit(
        &fixture_root("hotpath_tree_bad"),
        &["--root", "fixture.ingest"],
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(!out.status.success(), "filtered view still has findings");
    // Only fixture.ingest's region is checked: the unwrap in `head`
    // remains, the lock under fixture.flush disappears.
    assert!(text.contains("[h2-panic] in `head`"), "{text}");
    assert!(!text.contains("h3-lock"), "{text}");
    assert!(!text.contains("drain_len"), "{text}");
    assert!(text.contains("1 root(s)"), "{text}");
}

#[test]
fn unknown_root_lists_declared_names() {
    let out = audit(&fixture_root("hotpath_tree_bad"), &["--root", "nosuch"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("no hot root named `nosuch`"), "{err}");
    assert!(err.contains("fixture.ingest"), "{err}");
    assert!(err.contains("fixture.flush"), "{err}");
}

#[test]
fn json_document_carries_counts_and_counters() {
    let out = audit(&fixture_root("hotpath_tree_bad"), &["--json"]);
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(!out.status.success());
    assert!(json.contains("\"hot_root_count\": 2"), "{json}");
    assert!(json.contains("\"h1-alloc\": 1"), "{json}");
    assert!(json.contains("\"h2-panic\": 2"), "{json}");
    assert!(json.contains("\"h3-lock\": 1"), "{json}");
    assert!(json.contains("\"h4-float-order\": 0"), "{json}");
    assert!(json.contains("\"hot-annotation\": 1"), "{json}");
    // unannotated_escapes trends the full finding count (ISSUE 6).
    assert!(json.contains("\"unannotated_escapes\": 5"), "{json}");
}

#[test]
fn clean_json_has_zero_unannotated_escapes() {
    let out = audit(&fixture_root("hotpath_tree_ok"), &["--json"]);
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{json}");
    assert!(json.contains("\"hot_root_count\": 1"), "{json}");
    assert!(json.contains("\"unannotated_escapes\": 0"), "{json}");
    assert!(json.contains("\"reachable_functions\": 4"), "{json}");
}
