//! Edge-case tests for the lexical source model ([`spp_xtask::scan`])
//! and its interaction with the item parser ([`spp_xtask::items`]):
//! constructs that a token-level cleaner is most likely to get wrong —
//! raw strings carrying fake annotations, block comments hiding fn
//! signatures, string literals spanning item boundaries, and
//! `#[cfg(test)]` extents feeding the call graph.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use spp_xtask::callgraph::CallGraph;
use spp_xtask::items::parse_items;
use spp_xtask::scan::scan_source;

fn names(src: &str) -> Vec<String> {
    let sf = scan_source("crates/a/src/lib.rs", src);
    let items = parse_items(&sf, src);
    items.fns.iter().map(|f| f.name.clone()).collect()
}

#[test]
fn raw_string_with_hashes_does_not_fake_annotations() {
    // A raw string carrying the exact bytes of a hot-root annotation
    // and an fn signature must contribute neither items nor roots.
    let src = "fn real() {\n    let t = r##\"\n// spp-hot(fake.root)\nfn phantom() { x.unwrap(); }\n\"##;\n    let _ = t;\n}\n";
    let sf = scan_source("crates/a/src/lib.rs", src);
    for l in &sf.lines {
        assert!(!l.cleaned.contains("spp-hot"), "{:?}", l.cleaned);
        assert!(!l.cleaned.contains("unwrap"), "{:?}", l.cleaned);
    }
    let items = parse_items(&sf, src);
    assert_eq!(names(src), ["real"]);
    assert!(items.fns[0].hot_root.is_none());
}

#[test]
fn multiline_string_spanning_fn_boundary_keeps_item_extents() {
    // The literal closes in what would otherwise be a new item; the
    // parser must see exactly one fn and no phantom `leak`.
    let src =
        "fn holder() -> &'static str {\n    \"first line\nfn leak() {\n\"\n}\n\nfn after() {}\n";
    assert_eq!(names(src), ["holder", "after"]);
}

#[test]
fn nested_block_comment_hides_fn_signatures_across_lines() {
    let src = "/* outer /* fn inner() { */\nfn still_comment() {}\n*/\nfn live() {}\n";
    assert_eq!(names(src), ["live"]);
}

#[test]
fn block_comment_tail_on_code_line_is_preserved() {
    // Code after a same-line `*/` must survive cleaning.
    let src = "fn a() { /* panic!() */ b(); }\nfn b() {}\n";
    let sf = scan_source("crates/a/src/lib.rs", src);
    assert!(!sf.lines[0].cleaned.contains("panic"));
    assert!(sf.lines[0].cleaned.contains("b();"));
    let items = parse_items(&sf, src);
    assert_eq!(items.fns[0].calls.len(), 1);
    assert_eq!(items.fns[0].calls[0].callee, "b");
}

#[test]
fn cfg_test_fns_never_enter_the_call_graph() {
    // `helper` is called from both a live fn and a test fn; only the
    // live edge exists, and the test fn itself is no graph node.
    let src = "// spp-hot(a.root)\nfn root() {\n    helper();\n}\nfn helper() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn exercises() {\n        super::helper();\n        Vec::<u32>::new().push(1);\n    }\n}\n";
    let sf = scan_source("crates/a/src/lib.rs", src);
    let items = parse_items(&sf, src);
    assert!(items.fns.iter().any(|f| f.name == "exercises" && f.in_test));
    let files = vec![items];
    let graph = CallGraph::build(&files);
    assert!(graph.nodes.iter().all(|n| n.item.name != "exercises"));
    let reach = graph.reach(&graph.roots());
    assert_eq!(reach.len(), 2, "root + helper only");
}

#[test]
fn char_literal_quote_does_not_open_a_string() {
    // A '"' char literal must not swallow the rest of the file as a
    // string — the unwrap on the next line has to stay visible.
    let src = "fn a() {\n    let q = '\"';\n    let _ = q;\n}\nfn b(x: Option<u32>) {\n    x.unwrap();\n}\n";
    let sf = scan_source("crates/a/src/lib.rs", src);
    assert!(
        sf.lines[5].cleaned.contains(".unwrap("),
        "{:?}",
        sf.lines[5].cleaned
    );
    assert_eq!(names(src), ["a", "b"]);
}

#[test]
fn standalone_pragma_attaches_to_the_immediate_next_line_only() {
    // The documented sharp edge: a standalone pragma does NOT skip
    // over other comment lines, so stacking two standalone pragmas
    // leaves the second line annotated and the code line bare.
    let src = "// spp-lint: allow(l1-no-panic): first\n// second comment line\nx.unwrap();\n";
    let sf = scan_source("crates/a/src/lib.rs", src);
    assert!(sf.lines[1].allows.contains("l1-no-panic"));
    assert!(!sf.lines[2].allows.contains("l1-no-panic"));
}

#[test]
fn hot_escape_lines_match_token_lines_not_statement_starts() {
    // An escape is line-scoped: on a multi-line statement it must sit
    // on the line holding the allocating token, and the parser records
    // exactly that line number.
    let src = "fn f(n: usize) -> Vec<u32> {\n    let out =\n        Vec::with_capacity(n); // spp-hot: alloc(sized once)\n    out\n}\n";
    let sf = scan_source("crates/a/src/lib.rs", src);
    let items = parse_items(&sf, src);
    assert_eq!(items.escapes.len(), 1);
    assert_eq!(items.escapes[0].line, 3);
    assert!(items.escapes[0].rules.contains("h1-alloc"));
}
