//! End-to-end tests for `cargo xtask validate-trace`, driven through
//! the compiled binary against checked-in fixtures (no dependence on
//! bench-emitted artifacts, which are gitignored).

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spp-xtask"))
        .args(args)
        .output()
        .expect("spawn spp-xtask")
}

fn validate(file: &str, stages: bool) -> Output {
    let path = fixture(file);
    let path = path.to_str().unwrap();
    let mut args = vec!["validate-trace", path];
    if stages {
        args.push("--stages");
    }
    run(&args)
}

fn validate_attrib(file: &str) -> Output {
    let path = fixture(file);
    run(&["validate-trace", path.to_str().unwrap(), "--attrib"])
}

#[test]
fn valid_chrome_trace_passes_with_all_stages() {
    let out = validate("trace_valid.json", true);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("ok"), "stdout: {stdout}");
    assert!(
        stdout.contains("all pipeline stages present"),
        "stdout: {stdout}"
    );
}

#[test]
fn valid_jsonl_stream_passes() {
    let out = validate("trace_valid.jsonl", false);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("3 events"));
}

#[test]
fn missing_stage_span_fails_only_under_stages_flag() {
    let lenient = validate("trace_missing_stage.json", false);
    assert!(
        lenient.status.success(),
        "schema-valid trace must pass without --stages"
    );
    let strict = validate("trace_missing_stage.json", true);
    assert!(!strict.status.success());
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert!(
        stderr.contains("missing pipeline stage spans"),
        "stderr: {stderr}"
    );
    // The three present stages are not reported missing.
    for present in ["sample", "slice", "train"] {
        assert!(
            !stderr
                .split("missing pipeline stage spans:")
                .nth(1)
                .unwrap()
                .split(", ")
                .any(|s| s.trim() == present),
            "{present} wrongly reported missing: {stderr}"
        );
    }
}

#[test]
fn schema_violation_is_rejected() {
    let out = validate("trace_invalid.json", false);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing numeric `dur`"), "stderr: {stderr}");
}

#[test]
fn unreadable_file_exits_with_usage_error() {
    let out = validate("no_such_trace.json", false);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn valid_attribution_section_passes_under_attrib_flag() {
    let out = validate_attrib("trace_attrib_valid.json");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("2 attribution report(s) valid"),
        "stdout: {stdout}"
    );
}

#[test]
fn missing_attribution_fails_only_under_attrib_flag() {
    // trace_valid.json has no attrib section: fine without the flag,
    // an error with it.
    let lenient = validate("trace_valid.json", false);
    assert!(lenient.status.success());
    let strict = validate_attrib("trace_valid.json");
    assert!(!strict.status.success());
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert!(
        stderr.contains("missing top-level `attrib`"),
        "stderr: {stderr}"
    );
}

#[test]
fn tier_hits_must_partition_lookups() {
    let out = validate_attrib("trace_attrib_bad_partition.json");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("must partition"), "stderr: {stderr}");
}

#[test]
fn comm_matrix_must_be_square() {
    let out = validate_attrib("trace_attrib_bad_matrix.json");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("must be square"), "stderr: {stderr}");
}

#[test]
fn store_only_attribution_satisfies_attrib_flag() {
    let out = validate_attrib("trace_attrib_store_valid.json");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("1 attribution report(s) valid"),
        "stdout: {stdout}"
    );
}

#[test]
fn store_bytes_must_match_faults_times_page_size() {
    let out = validate_attrib("trace_attrib_bad_store.json");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bytes_read 999 != pages_faulted 30"),
        "stderr: {stderr}"
    );
}

#[test]
fn sketch_bucket_counts_must_match_total() {
    // A present-but-inconsistent attrib section fails even WITHOUT the
    // --attrib flag: present sections are always validated.
    let out = validate("trace_attrib_bad_buckets.json", false);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bucket counts sum to 2 but count is 5"),
        "stderr: {stderr}"
    );
}
