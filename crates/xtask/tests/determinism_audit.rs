//! End-to-end tests for `cargo xtask audit-determinism`, driven through
//! the compiled binary against checked-in fixture trees (`--dir` points
//! the walker at a miniature workspace, so the real repository's roots
//! and baseline never leak into the assertions), plus the cross-pass
//! consistency guarantee: from the same root, `audit-determinism` and
//! `audit-hotpaths` resolve identical reachable sets.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use spp_xtask::callgraph::CallGraph;
use spp_xtask::items::AuditKind;
use spp_xtask::{items, scan, walk};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn audit(cmd: &str, dir: &str, extra: &[&str]) -> Output {
    let mut args = vec![cmd, "--dir", dir];
    args.extend_from_slice(extra);
    Command::new(env!("CARGO_BIN_EXE_spp-xtask"))
        .args(args)
        .output()
        .expect("spawn spp-xtask")
}

fn det(dir: &Path, extra: &[&str]) -> Output {
    audit("audit-determinism", dir.to_str().unwrap(), extra)
}

#[test]
fn clean_tree_passes_with_escape_inventoried_and_stop_recorded() {
    let out = det(&fixture_root("det_tree_ok"), &[]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "expected clean audit, got:\n{text}");
    // One root; its whole reachable set (step, index_of, gather, render)
    // is attributed to it.
    assert!(
        text.contains("root fixture.step = step (crates/core/src/pipeline.rs:10): 4 reachable"),
        "{text}"
    );
    assert!(text.contains("0 finding(s)"), "{text}");
    // The justified ambient read is inventoried, not flagged.
    assert!(
        text.contains(
            "escape [d3-ambient-read] build stamp recorded beside results, never inside them"
        ),
        "{text}"
    );
    // The trace boundary is recorded; the wall clock inside it is never
    // checked.
    assert!(
        text.contains(
            "stop render (crates/core/src/pipeline.rs): trace emission; timestamps label log \
             lines, not results"
        ),
        "{text}"
    );
}

#[test]
fn seeded_hash_drain_is_caught_two_calls_below_root_across_crates() {
    let out = det(&fixture_root("det_tree_bad"), &[]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(!out.status.success(), "seeded violations must fail");
    // The drain lives in crates/util `merge`, reached root ->
    // stage_batch -> merge via a bare-name cross-crate edge.
    assert!(
        text.contains(
            "crates/util/src/lib.rs:12: [d1-unordered-iter] in `merge` (via fixture.ingest)"
        ),
        "{text}"
    );
    assert!(
        text.contains(
            "order-observing iteration over hash collection `table` (reached from det root \
             `fixture.ingest` at depth 2)"
        ),
        "{text}"
    );
}

#[test]
fn seeded_rng_ambient_worker_and_float_order_mutants_are_caught() {
    let out = det(&fixture_root("det_tree_bad"), &[]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("[d2-unseeded-rng] in `jitter` (via fixture.flush)"),
        "{text}"
    );
    assert!(
        text.contains("[d3-ambient-read] in `knob` (via fixture.ingest)"),
        "{text}"
    );
    // The worker count leaks into flush's returned value.
    assert!(
        text.contains("[d4-worker-leak] in `width` (via fixture.flush)"),
        "{text}"
    );
    // Hash iteration in a float-accumulating fn escalates to D5, not D1.
    assert!(
        text.contains("[d5-float-order] in `spread` (via fixture.flush)"),
        "{text}"
    );
    assert!(
        text.contains("float accumulation over hash collection `hist`"),
        "{text}"
    );
    // The identical unseeded draw in the never-reached `cold_resample`
    // is silent.
    assert!(!text.contains("cold_resample"), "{text}");
}

#[test]
fn stale_det_escape_is_flagged() {
    let out = det(&fixture_root("det_tree_bad"), &[]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("crates/core/src/pipeline.rs:23: [det-annotation]"),
        "{text}"
    );
    assert!(
        text.contains(
            "stale escape: `spp-det: allow(d1-unordered-iter)` suppresses nothing on this line"
        ),
        "{text}"
    );
}

#[test]
fn root_filter_restricts_traversal() {
    let out = det(&fixture_root("det_tree_bad"), &["--root", "fixture.ingest"]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(!out.status.success(), "filtered view still has findings");
    // Only fixture.ingest's region is checked: the drain and env read
    // remain; flush's rng/worker/float hazards disappear.
    assert!(text.contains("[d1-unordered-iter] in `merge`"), "{text}");
    assert!(text.contains("[d3-ambient-read] in `knob`"), "{text}");
    assert!(!text.contains("d2-unseeded-rng"), "{text}");
    assert!(!text.contains("d4-worker-leak"), "{text}");
    assert!(!text.contains("d5-float-order"), "{text}");
    assert!(text.contains("1 root(s)"), "{text}");
}

#[test]
fn unknown_root_lists_declared_names() {
    let out = det(&fixture_root("det_tree_bad"), &["--root", "nosuch"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("no det root named `nosuch`"), "{err}");
    assert!(err.contains("fixture.ingest"), "{err}");
    assert!(err.contains("fixture.flush"), "{err}");
}

#[test]
fn json_document_carries_counts_and_counters() {
    let out = det(&fixture_root("det_tree_bad"), &["--json"]);
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(!out.status.success());
    assert!(json.contains("\"det_root_count\": 2"), "{json}");
    for rule in [
        "d1-unordered-iter",
        "d2-unseeded-rng",
        "d3-ambient-read",
        "d4-worker-leak",
        "d5-float-order",
        "det-annotation",
    ] {
        assert!(json.contains(&format!("\"{rule}\": 1")), "{rule}: {json}");
    }
    assert!(json.contains("\"unannotated_escapes\": 6"), "{json}");
    assert!(json.contains("\"files_scanned\": 2"), "{json}");
}

#[test]
fn clean_json_inventories_every_escape() {
    let out = det(&fixture_root("det_tree_ok"), &["--json"]);
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{json}");
    assert!(json.contains("\"det_root_count\": 1"), "{json}");
    assert!(json.contains("\"unannotated_escapes\": 0"), "{json}");
    assert!(json.contains("\"reachable_functions\": 4"), "{json}");
    assert!(
        json.contains("\"reason\": \"build stamp recorded beside results, never inside them\""),
        "{json}"
    );
}

/// Cross-pass consistency at the library level: the hot and det
/// traversals share one call graph, so a fn dual-annotated as both a hot
/// and a det root (with the same boundary declared to both families)
/// must reach exactly the same node set under either kind.
#[test]
fn hot_and_det_passes_resolve_identical_reachable_sets() {
    let root = fixture_root("crossaudit_tree");
    let sources = walk::read_targets(&root).unwrap();
    let parsed: Vec<_> = sources
        .iter()
        .map(|(rel, src)| items::parse_items(&scan::scan_source(rel, src), src))
        .collect();
    let graph = CallGraph::build(&parsed);

    let hot_roots = graph.roots_for(AuditKind::Hot);
    let det_roots = graph.roots_for(AuditKind::Det);
    assert_eq!(hot_roots, det_roots, "dual annotation must yield one root");

    let node_set = |kind: AuditKind, roots: &[usize]| -> BTreeSet<String> {
        graph
            .reach_for(roots, kind)
            .iter()
            .map(|r| graph.nodes[r.node].item.name.clone())
            .collect()
    };
    let hot = node_set(AuditKind::Hot, &hot_roots);
    let det = node_set(AuditKind::Det, &det_roots);
    assert_eq!(hot, det, "reachable sets diverged between audit families");
    let expect: BTreeSet<String> = ["serve", "stage", "finish", "log_result"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(hot, expect);
    assert!(!hot.contains("orphan"), "unreached leaf leaked in");
}

/// The same guarantee end-to-end through the compiled binary: both
/// commands report the same root line and reachable count over the
/// shared fixture tree.
#[test]
fn both_audit_commands_agree_on_the_shared_tree() {
    let dir = fixture_root("crossaudit_tree");
    let hot = audit("audit-hotpaths", dir.to_str().unwrap(), &[]);
    let det = det(&dir, &[]);
    let hot_text = String::from_utf8(hot.stdout).unwrap();
    let det_text = String::from_utf8(det.stdout).unwrap();
    assert!(hot.status.success(), "{hot_text}");
    assert!(det.status.success(), "{det_text}");
    let root_line = "root fixture.serve = serve (crates/core/src/pipeline.rs:11): \
                     4 reachable fn(s), max depth 2";
    assert!(hot_text.contains(root_line), "{hot_text}");
    assert!(det_text.contains(root_line), "{det_text}");
    // Each family records the boundary under its own reason.
    assert!(
        hot_text.contains(
            "stop log_result (crates/core/src/pipeline.rs): report assembly; off the batch path"
        ),
        "{hot_text}"
    );
    assert!(
        det_text.contains("stop log_result (crates/core/src/pipeline.rs): report assembly; log text is outside §9 scope"),
        "{det_text}"
    );
}
