//! End-to-end tests for `cargo xtask lint` pragma handling, driven
//! through the compiled binary against checked-in fixture trees
//! (`--root` points the walker at a miniature workspace).

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture_root(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

fn lint(root: &str, json: bool) -> Output {
    let mut args = vec!["lint", "--root", root];
    if json {
        args.push("--json");
    }
    Command::new(env!("CARGO_BIN_EXE_spp-xtask"))
        .args(args)
        .output()
        .expect("spawn spp-xtask")
}

#[test]
fn well_formed_pragmas_suppress_cleanly() {
    let root = fixture_root("lint_tree_ok");
    let out = lint(&root, false);
    let text = String::from_utf8(out.stdout).unwrap();
    // Trailing prose after the justification, multiple rules in one
    // pragma, and the standalone next-line form must all suppress.
    assert!(out.status.success(), "expected clean lint, got:\n{text}");
    assert!(text.contains("0 finding(s)"), "{text}");
    // The annotated relaxed call is inventoried, not flagged.
    assert!(text.contains("1 annotated relaxed site(s)"), "{text}");
    assert!(text.contains("relaxed(fixture: monotonic tally)"), "{text}");
}

#[test]
fn malformed_pragma_is_a_hard_error() {
    let root = fixture_root("lint_tree_bad");
    let out = lint(&root, false);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        !out.status.success(),
        "malformed pragmas must fail the lint"
    );
    // Both malformed shapes are reported ...
    assert_eq!(
        text.matches("[pragma] malformed spp-lint pragma").count(),
        2,
        "{text}"
    );
    // ... and neither suppresses: the underlying violations surface too.
    assert_eq!(text.matches("[l1-no-panic]").count(), 2, "{text}");
}

#[test]
fn l7_and_l8_fire_outside_spp_sync() {
    let root = fixture_root("lint_tree_bad");
    let out = lint(&root, true);
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(!out.status.success());
    assert!(json.contains("\"l7-raw-atomics\": 3"), "{json}");
    // One unannotated call plus one stale note on a rewritten call.
    assert!(json.contains("\"l8-relaxed-note\": 2"), "{json}");
    assert!(json.contains("stale"), "{json}");
    // Neither site is a valid annotation, so the inventory stays empty.
    assert!(json.contains("\"relaxed_sites\": [\n\n  ]"), "{json}");
}

#[test]
fn json_report_counts_match_text_totals() {
    let root = fixture_root("lint_tree_ok");
    let out = lint(&root, true);
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{json}");
    assert!(json.contains("\"total\": 0"), "{json}");
    assert!(json.contains("\"files_scanned\": 1"), "{json}");
    assert!(
        json.contains("\"reason\": \"fixture: monotonic tally\""),
        "{json}"
    );
}
