//! Lint fixture: malformed pragmas and violations the linter must
//! report as hard errors.

pub fn pragma_missing_justification(x: Option<u32>) -> u32 {
    x.unwrap() // spp-lint: allow(l1-no-panic)
}

pub fn pragma_empty_rule_list(x: Option<u32>) -> u32 {
    x.unwrap() // spp-lint: allow(): because
}

pub fn raw_atomic_outside_spp_sync(c: &std::sync::atomic::AtomicU64) -> u64 {
    c.load(std::sync::atomic::Ordering::Relaxed)
}

pub fn unannotated_relaxed_site(c: &spp_sync::AtomicU64) -> u64 {
    c.load_relaxed()
}

pub fn stale_relaxed_note(c: &spp_sync::AtomicU64) -> u64 {
    c.load_acquire() // spp-sync: relaxed(the call this justified was rewritten)
}
