//! Clean determinism fixture: one declared det root whose reachable set
//! either avoids the nondeterminism tokens, uses hash tables only for
//! construction and keyed lookup, or carries justified escapes — plus a
//! trace-emission boundary the traversal must record without expanding.

use std::collections::HashMap;

/// The fixture's declared det root.
// spp-det(fixture.step)
pub fn step(keys: &[u32], vals: &[f32]) -> Vec<f32> {
    let stamp = std::time::SystemTime::now(); // spp-det: allow(d3-ambient-read): build stamp recorded beside results, never inside them
    let index = index_of(keys);
    let out = gather(keys, vals, &index);
    render(&out, stamp);
    out
}

/// Hash construction plus keyed insertion: legal under D1, which flags
/// only iteration over the table.
fn index_of(keys: &[u32]) -> HashMap<u32, u32> {
    let mut index = HashMap::new();
    for (i, &k) in keys.iter().enumerate() {
        index.insert(k, i as u32);
    }
    index
}

/// Output order follows the input slice, never table storage order.
fn gather(keys: &[u32], vals: &[f32], index: &HashMap<u32, u32>) -> Vec<f32> {
    keys.iter()
        .map(|k| index.get(k).map_or(0.0, |&i| vals[i as usize]))
        .collect()
}

/// Trace emission, declared out of §9 scope: the traversal records the
/// boundary and never checks the wall-clock read inside.
// spp-det: stop(trace emission; timestamps label log lines, not results)
fn render(out: &[f32], stamp: std::time::SystemTime) {
    let elapsed = stamp.elapsed().map_or(0, |d| d.as_micros());
    let _ = format!("wrote {} values in {elapsed}us", out.len());
}

#[cfg(test)]
mod tests {
    // Test code may draw unseeded randomness freely without tripping
    // the audit: reachability never enters `#[cfg(test)]` items.
    #[test]
    fn test_fns_are_exempt() {
        let coin = std::time::Instant::now().elapsed().as_nanos() % 2;
        assert!(coin < 2);
    }
}
