//! Clean hot-path fixture: one declared root whose reachable set either
//! avoids the hazard tokens or annotates them with reasons, plus a cold
//! boundary the traversal must record without expanding.

/// The fixture's declared hot root.
// spp-hot(fixture.step)
pub fn step(acc: &mut [f32], xs: &[f32]) -> f32 {
    let row = gather_row(xs.len());
    let total = accumulate(acc, &row);
    render(total);
    total
}

/// Index-ordered reduction: slice iteration keeps H4 quiet even though
/// the fn accumulates floats.
fn accumulate(acc: &mut [f32], xs: &[f32]) -> f32 {
    let mut total = 0.0f32;
    for (a, &x) in acc.iter_mut().zip(xs) {
        *a += x;
        total += x;
    }
    total
}

/// Builds one output row; both allocations carry reasons.
fn gather_row(n: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(n); // spp-hot: alloc(output row, sized once per call)
    for i in 0..n {
        out.push(i as f32); // spp-hot: alloc(capacity reserved above)
    }
    out
}

/// Report assembly, declared cold: the traversal records the boundary
/// and must not flag the formatting allocation inside.
// spp-hot: stop(report assembly; off the batch path)
fn render(total: f32) -> String {
    format!("total={total}")
}

#[cfg(test)]
mod tests {
    // Test code may allocate and unwrap freely without tripping the
    // audit: reachability never enters `#[cfg(test)]` items.
    #[test]
    fn test_fns_are_exempt() {
        let v: Vec<u32> = Vec::new();
        assert_eq!(v.first().copied(), None);
    }
}
