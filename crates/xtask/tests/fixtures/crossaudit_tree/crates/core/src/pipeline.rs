//! Cross-pass consistency fixture: one entry point annotated as both a
//! hot root and a det root, with the same cold boundary declared to both
//! families. `audit-hotpaths` and `audit-determinism` walk the same call
//! graph, so from the same root they must resolve identical reachable
//! sets — the property `determinism_audit.rs` pins at the library and
//! CLI levels.

/// Entry point declared to both audit families.
// spp-hot(fixture.serve)
// spp-det(fixture.serve)
pub fn serve(xs: &[f32], out: &mut [f32]) -> f32 {
    stage(xs, out);
    finish(out)
}

/// Pure elementwise transform: no hazards under either family.
fn stage(xs: &[f32], out: &mut [f32]) {
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = x * 2.0;
    }
}

/// Index-ordered reduction: clean under H4 and D5 alike.
fn finish(staged: &[f32]) -> f32 {
    let mut total = 0.0f32;
    for &x in staged {
        total += x;
    }
    log_result(total);
    total
}

/// Cold under both families, via both markers: each traversal records
/// the boundary without expanding past it.
// spp-hot: stop(report assembly; off the batch path)
// spp-det: stop(report assembly; log text is outside §9 scope)
fn log_result(total: f32) {
    let _ = format!("total={total}");
}

/// Reached by neither family: a dangling leaf both audits must agree
/// to exclude.
pub fn orphan(n: usize) -> usize {
    n + 1
}
