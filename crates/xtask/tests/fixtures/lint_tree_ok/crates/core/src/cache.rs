//! Lint fixture: well-formed pragmas in all accepted shapes.

pub fn trailing_comment_after_justification(x: Option<u32>) -> u32 {
    // The justification may itself carry trailing prose and punctuation.
    x.unwrap() // spp-lint: allow(l1-no-panic): presence checked by caller -- see the admission test
}

pub fn multiple_rules_one_pragma(x: Option<u32>) -> u32 {
    let t0 = std::time::Instant::now(); // spp-lint: allow(l1-no-panic, l6-raw-instant): fixture exercising a multi-rule pragma
    let v = x.unwrap(); // spp-lint: allow(l1-no-panic, l6-raw-instant): fixture exercising a multi-rule pragma
    v + t0.elapsed().subsec_nanos()
}

pub fn standalone_pragma_covers_next_line(x: Option<u32>) -> u32 {
    // spp-lint: allow(l1-no-panic): standalone form applies to the following line
    x.unwrap()
}

pub fn annotated_relaxed_site(c: &spp_sync::AtomicU64) -> u64 {
    c.load_relaxed() // spp-sync: relaxed(fixture: monotonic tally)
}
