//! Seeded-violation fixture: every nondeterminism hazard sits one or
//! two calls below a declared det root, so only the transitive effect
//! inference can attribute it.

use std::collections::HashMap;

/// Root whose hazards are all in transitive callees.
// spp-det(fixture.ingest)
pub fn ingest(xs: &[f32]) -> Vec<f32> {
    stage_batch(xs)
}

/// Builds the table (legal: construction and keyed insertion never leak
/// storage order), reads the ambient knob, and hands the table to the
/// drain two calls below the root. Also carries the seeded stale escape
/// on a line with no hash iteration at all.
fn stage_batch(xs: &[f32]) -> Vec<f32> {
    let mut table: HashMap<u32, f32> = HashMap::new();
    for (i, &x) in xs.iter().enumerate() {
        table.insert(i as u32, x);
    }
    let gain = knob();
    let n = xs.len(); // spp-det: allow(d1-unordered-iter): seeded stale annotation
    let _ = (gain, n);
    merge(table)
}

/// Ambient env read on the result path: the seeded D3.
fn knob() -> f32 {
    std::env::var("FIXTURE_GAIN").map_or(1.0, |s| s.parse().unwrap_or(1.0))
}

/// A second root so `--root` filtering has something to exclude.
// spp-det(fixture.flush)
pub fn flush(xs: &[f32]) -> f32 {
    spread(xs) + jitter() + width() as f32
}

/// Hash-ordered float accumulation: `+=` follows storage order, the
/// seeded D5 (not D1 — the fn accumulates floats).
fn spread(xs: &[f32]) -> f32 {
    let mut hist: HashMap<u32, f32> = HashMap::new();
    for &x in xs {
        *hist.entry(x as u32).or_insert(0.0) += x;
    }
    let mut total = 0.0f32;
    for v in hist.values() {
        total += v;
    }
    total
}

/// Unseeded draw: the seeded D2.
fn jitter() -> f32 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

/// Worker count flowing into a returned value: the seeded D4.
fn width() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Never reached from a det root: hazards here must stay invisible.
pub fn cold_resample() -> f32 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
