//! Cross-crate leaf for the seeded-violation tree: `merge` is reached
//! from `fixture.ingest` in crates/core via a bare-name call, proving
//! the det traversal follows workspace-wide edges.

use std::collections::HashMap;

/// Drains the table in storage order: the seeded D1, two calls below
/// the root. No float accumulation, so the finding stays D1 rather
/// than escalating to D5.
pub fn merge(mut table: HashMap<u32, f32>) -> Vec<f32> {
    let mut out = Vec::new();
    for (_, v) in table.drain() {
        out.push(v);
    }
    out
}
