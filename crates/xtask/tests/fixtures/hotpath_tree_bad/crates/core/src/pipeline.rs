//! Seeded-violation fixture: every hazard sits one or two calls below a
//! declared root, so only the transitive analyzer can attribute it.

/// Root whose violations are all in transitive callees.
// spp-hot(fixture.ingest)
pub fn ingest(xs: &[f32], out: &mut Vec<f32>) -> f32 {
    stage_batch(xs, out)
}

fn stage_batch(xs: &[f32], out: &mut Vec<f32>) -> f32 {
    for &x in xs {
        grow(out, x);
    }
    head(xs)
}

/// Carries the seeded transitive unwrap (depth 2 below the root) and a
/// stale escape on a line that allocates nothing.
fn head(xs: &[f32]) -> f32 {
    let n = xs.len(); // spp-hot: allow(h1-alloc): seeded stale annotation
    let _ = n;
    xs.first().copied().unwrap()
}

/// A second root so `--root` filtering has something to exclude.
// spp-hot(fixture.flush)
pub fn flush(m: &std::sync::Mutex<Vec<f32>>) -> usize {
    drain_len(m)
}

fn drain_len(m: &std::sync::Mutex<Vec<f32>>) -> usize {
    m.lock().unwrap().len()
}
