//! Cross-crate leaf for the seeded-violation tree: `grow` is reached
//! from `fixture.ingest` in crates/core via a bare-name call, proving
//! the call graph follows workspace-wide edges.

/// Appends without an allocation annotation: the seeded H1 violation,
/// two calls below the root.
pub fn grow(out: &mut Vec<f32>, v: f32) {
    out.push(v);
}

/// Never called from a root: hazards here must stay invisible.
pub fn cold_rebuild(n: usize) -> Vec<f32> {
    let mut out = Vec::new();
    for i in 0..n {
        out.push(i as f32);
    }
    out
}
