//! End-to-end tests for `cargo xtask bench-diff`, driven through the
//! compiled binary: the gate's two acceptance properties are (a) zero
//! regressions on identical inputs and (b) a synthetic 20 % kernel
//! slowdown is flagged and fails the run.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The repository's committed full-scale kernel report: the gate must
/// work against real artifacts, not only synthetic fixtures.
fn repo_kernels_json() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_kernels.json")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spp-xtask"))
        .args(args)
        .output()
        .expect("spawn spp-xtask")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spp-bench-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bench_diff(old: &Path, new: &Path, json: bool) -> Output {
    let mut args = vec!["bench-diff", old.to_str().unwrap(), new.to_str().unwrap()];
    if json {
        args.push("--json");
    }
    run(&args)
}

#[test]
fn identical_inputs_report_zero_regressions_twice() {
    let kernels = repo_kernels_json();
    // Run the exact same comparison twice: both runs must pass with
    // zero regressions (the gate is deterministic, not flaky).
    for _ in 0..2 {
        let out = bench_diff(&kernels, &kernels, false);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "stdout: {stdout}\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout.contains("0 regression(s)"), "stdout: {stdout}");
        assert!(stdout.contains("PASS"), "stdout: {stdout}");
    }
}

#[test]
fn synthetic_20_percent_slowdown_fails_the_gate() {
    let src = std::fs::read_to_string(repo_kernels_json()).unwrap();
    // Inject a 20 % slowdown into the blocked-matmul GFLOP/s by
    // scaling the committed value down in a copy of the report.
    let needle = "\"blocked\": ";
    let start = src.find(needle).unwrap() + needle.len();
    let end = start + src[start..].find([',', '}']).unwrap();
    let old_val: f64 = src[start..end].trim().parse().unwrap();
    let slowed = format!("{}{:.3}{}", &src[..start], old_val * 0.8, &src[end..]);
    assert_ne!(src, slowed);

    let dir = scratch("slowdown");
    let slowed_path = dir.join("BENCH_kernels.json");
    std::fs::write(&slowed_path, slowed).unwrap();

    let out = bench_diff(&repo_kernels_json(), &slowed_path, false);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "a 20% GFLOP/s slowdown must fail the gate; stdout: {stdout}"
    );
    assert_eq!(out.status.code(), Some(1), "regression exit code");
    assert!(
        stdout.contains("REGRESSION kernels.matmul_gflops.blocked"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("FAIL"), "stdout: {stdout}");

    // The JSON rendering names the same regression.
    let out = bench_diff(&repo_kernels_json(), &slowed_path, true);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"pass\": false"), "stdout: {stdout}");
    assert!(
        stdout.contains("kernels.matmul_gflops.blocked"),
        "stdout: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_bundle_roundtrips_against_its_source_dir() {
    let dir = scratch("snapshot");
    std::fs::copy(repo_kernels_json(), dir.join("BENCH_kernels.json")).unwrap();
    let bundle = dir.join("bench_baseline.json");
    let out = run(&[
        "bench-diff",
        "--snapshot",
        dir.to_str().unwrap(),
        bundle.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Bundle vs the directory it was built from: zero regressions.
    let out = bench_diff(&bundle, &dir, false);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("0 regression(s)"), "stdout: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn removed_bench_is_a_regression() {
    let dir = scratch("removed");
    // New side has no BENCH files at all -> load error (exit 2), so
    // give it an unrelated bench instead: the kernels metrics vanish.
    std::fs::write(
        dir.join("BENCH_other.json"),
        r#"{"schema_version": 1, "bench": "other", "something_per_s": 5.0}"#,
    )
    .unwrap();
    let out = bench_diff(&repo_kernels_json(), &dir, false);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("removed"), "stdout: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_2() {
    let out = run(&["bench-diff", "/no/such/old.json", "/no/such/new.json"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["bench-diff", "only-one-path"]);
    assert_eq!(out.status.code(), Some(2));
}
