//! `cargo xtask bench-diff` — the noise-aware bench regression gate.
//!
//! Compares two sets of `BENCH_*.json` reports (DESIGN.md §15): every
//! numeric leaf is flattened to a dotted metric path
//! (`kernels.matmul_gflops.blocked`), classified by a per-metric policy
//! — better-direction plus a noise tolerance calibrated to how the
//! metric is measured — and gated. Virtual-time metrics (the DES
//! serving/pipeline benches) are deterministic, so they get tight
//! tolerances; wall-clock metrics (GFLOP/s, ns/op) get generous ones;
//! config/header fields are skipped; metrics with no matching policy
//! are reported informationally but never gate. A gated metric that
//! *disappears* between old and new is itself a regression — deleting
//! a bench cannot green the gate.
//!
//! Inputs may be a directory holding `BENCH_*.json` files, a single
//! report, or a baseline bundle (`{"benches": {name: report, ...}}`)
//! as committed at `results/bench_baseline.json`. The same module
//! renders those bundles (`--snapshot`).

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Which direction of change is an improvement for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput, GFLOP/s, hit rates).
    HigherBetter,
    /// Smaller is better (latency, bytes, ns/op).
    LowerBetter,
    /// Any drift beyond tolerance is suspect (losses, checksummed
    /// outputs).
    Neutral,
}

/// Gate policy for one metric.
#[derive(Clone, Copy, Debug)]
pub struct Policy {
    /// Better direction.
    pub dir: Direction,
    /// Relative change tolerated before flagging (noise margin).
    pub tol: f64,
}

/// One metric's comparison outcome.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Dotted metric path (`bench.section.metric`).
    pub path: String,
    /// Old value (None: metric is new).
    pub old: Option<f64>,
    /// New value (None: metric was removed).
    pub new: Option<f64>,
    /// Signed relative change `(new - old) / |old|`, when both exist
    /// and old is nonzero.
    pub rel: Option<f64>,
    /// The policy applied (None: informational metric).
    pub policy: Option<Policy>,
    /// Whether this delta fails the gate.
    pub regression: bool,
}

/// Full diff outcome.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Every compared (or added/removed) metric, path order.
    pub deltas: Vec<Delta>,
    /// Gated metrics checked.
    pub gated: usize,
}

impl DiffReport {
    /// Deltas failing the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.regression)
    }

    /// Whether the gate passes.
    pub fn pass(&self) -> bool {
        self.deltas.iter().all(|d| !d.regression)
    }
}

/// Header/config keys that are not metrics at any nesting depth.
const CONFIG_KEYS: &[&str] = &[
    "schema_version",
    "bench",
    "git_commit",
    "pool_workers",
    "sweep_strategy",
    "shape",
    "reps",
    "repeats",
    "iters",
    "scale",
    "seed",
    "requests",
    "skew",
    "machines",
    "alpha_total",
    "min_speedup",
    "available_parallelism",
    "workers",
    "fanouts",
    "partitions",
    "vertices",
    "edges",
    "train_vertices",
    "seeds_per_partition",
    "clients",
    "epochs",
    "train_epochs",
    "sim_rounds",
    "cache_rows_total",
    "overlay_rows",
    "quant_static_rows",
    "quant_overlay_rows",
    "burstiness",
    "windows",
    // Out-of-core store geometry (spp-store): page size/shape and
    // streaming chunk sizes are configuration, not outcomes — and
    // `page_bytes` must never fall through to the `bytes` gate below.
    "dim",
    "page_rows",
    "page_bytes",
    "num_pages",
    "chunk_edges",
    // Quantile-sketch internals: the p50/p99/p999 leaves carry the
    // behavior; raw bucket vectors would add thousands of brittle
    // per-bucket gates.
    "buckets",
];

/// Returns the gate policy for `path` (already lowercased, starting
/// with `<bench>.`), or `None` for informational-only metrics.
#[must_use]
pub fn policy_for(path: &str) -> Option<Policy> {
    let p = |dir, tol| Some(Policy { dir, tol });
    // Virtual-time benches: every number is a pure function of the
    // seed/config (DESIGN.md §11), so the tolerance only absorbs float
    // rendering, not measurement noise.
    let virtual_time = path.starts_with("serving.") || path.starts_with("pipeline_trace.");
    if virtual_time {
        if path.contains("loss") {
            return p(Direction::Neutral, 0.001);
        }
        if path.contains("hit_rate") || path.contains("throughput") || path.contains("completed") {
            return p(Direction::HigherBetter, 0.02);
        }
        if path.contains("latency")
            || path.contains("_ms")
            || path.contains("makespan")
            || path.contains("bytes")
            || path.contains("rejected")
            || path.contains("evictions")
            || path.contains("fetches")
            || path.contains("_p50")
            || path.contains("_p99")
            || path.contains("_p999")
        {
            return p(Direction::LowerBetter, 0.02);
        }
        return None;
    }
    // Out-of-core store benches (`io_bench`): page/byte traffic is a
    // deterministic function of the seeded sample stream and the page
    // geometry, so the tolerance only absorbs float rendering. Checked
    // before the wall-clock rules so `bytes_read` never hits the noisy
    // generic `bytes` gate.
    if path.starts_with("io.") {
        if path.contains("locality_gain") {
            return p(Direction::HigherBetter, 0.02);
        }
        if path.contains("bytes") || path.contains("fault") || path.contains("pages") {
            return p(Direction::LowerBetter, 0.02);
        }
        if path.contains("secs") || path.contains("_ms") {
            return p(Direction::LowerBetter, 0.35);
        }
        return None;
    }
    // Wall-clock metrics, from steadiest to noisiest.
    if path.contains("gflops") {
        return p(Direction::HigherBetter, 0.12);
    }
    if path.contains("wire_bytes") || path.ends_with("bytes") {
        return p(Direction::LowerBetter, 0.01);
    }
    if path.ends_with(".pass") {
        return p(Direction::HigherBetter, 0.0);
    }
    if path.contains("_ns") && !path.contains("budget") {
        return p(Direction::LowerBetter, 0.5);
    }
    if path.contains("per_s") || path.contains("per_sec") || path.contains("throughput") {
        return p(Direction::HigherBetter, 0.35);
    }
    if path.contains("speedup") {
        return p(Direction::HigherBetter, 0.35);
    }
    if path.contains("secs") || path.contains("_ms") || path.contains("latency") {
        return p(Direction::LowerBetter, 0.35);
    }
    if path.contains("hit_rate") {
        return p(Direction::HigherBetter, 0.05);
    }
    None
}

/// Flattens every numeric (and boolean, as 0/1) leaf of `v` into
/// `out`, prefixing object keys with dots and array elements with
/// their index. Config keys are skipped at any depth.
fn flatten(prefix: &str, v: &Json, out: &mut BTreeMap<String, f64>) {
    match v {
        Json::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        Json::Bool(b) => {
            out.insert(prefix.to_string(), f64::from(u8::from(*b)));
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(&format!("{prefix}.{i}"), item, out);
            }
        }
        Json::Obj(map) => {
            for (k, item) in map {
                if CONFIG_KEYS.contains(&k.as_str()) || k.contains("budget") {
                    continue;
                }
                flatten(&format!("{prefix}.{k}"), item, out);
            }
        }
        Json::Str(_) | Json::Null => {}
    }
}

/// Loads a bench set from `path`: a directory of `BENCH_*.json`, a
/// baseline bundle, or one report. Keys are bench names.
pub fn load_set(path: &Path) -> Result<BTreeMap<String, Json>, String> {
    let mut out = BTreeMap::new();
    if path.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        entries.sort();
        if entries.is_empty() {
            return Err(format!("{}: no BENCH_*.json files", path.display()));
        }
        for p in entries {
            let (name, doc) = load_report(&p)?;
            out.insert(name, doc);
        }
        return Ok(out);
    }
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
    if let Some(Json::Obj(benches)) = doc.get("benches") {
        for (name, report) in benches {
            out.insert(name.clone(), report.clone());
        }
        return Ok(out);
    }
    let (name, doc) = name_report(path, doc)?;
    out.insert(name, doc);
    Ok(out)
}

fn load_report(path: &Path) -> Result<(String, Json), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
    name_report(path, doc)
}

fn name_report(path: &Path, doc: Json) -> Result<(String, Json), String> {
    let name = doc
        .get("bench")
        .and_then(Json::as_str)
        .map(str::to_string)
        .or_else(|| {
            path.file_stem()
                .and_then(|s| s.to_str())
                .map(|s| s.trim_start_matches("BENCH_").to_string())
        })
        .ok_or_else(|| format!("{}: report has no `bench` field", path.display()))?;
    Ok((name, doc))
}

/// Flattens a whole bench set to `bench.path` → value.
#[must_use]
pub fn flatten_set(set: &BTreeMap<String, Json>) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for (name, doc) in set {
        flatten(name, doc, &mut out);
    }
    out
}

/// Diffs two flattened bench sets under the metric policies.
#[must_use]
pub fn diff(old: &BTreeMap<String, f64>, new: &BTreeMap<String, f64>) -> DiffReport {
    let mut rep = DiffReport::default();
    let mut paths: Vec<&String> = old.keys().chain(new.keys()).collect();
    paths.sort();
    paths.dedup();
    for path in paths {
        let ov = old.get(path).copied();
        let nv = new.get(path).copied();
        let pol = policy_for(&path.to_lowercase());
        if pol.is_some() && ov.is_some() {
            rep.gated += 1;
        }
        let (rel, regression) = match (ov, nv, pol) {
            (Some(o), Some(n), pol) => {
                let rel = if o == 0.0 {
                    if n == 0.0 {
                        Some(0.0)
                    } else {
                        None
                    }
                } else {
                    Some((n - o) / o.abs())
                };
                let reg = match (pol, rel) {
                    (Some(p), Some(r)) => match p.dir {
                        Direction::HigherBetter => r < -p.tol,
                        Direction::LowerBetter => r > p.tol,
                        Direction::Neutral => r.abs() > p.tol,
                    },
                    // Gated metric went 0 → nonzero: flag unless higher
                    // is better.
                    (Some(p), None) => p.dir != Direction::HigherBetter,
                    (None, _) => false,
                };
                (rel, reg)
            }
            // A gated metric that vanished is a regression; an added or
            // informational one is not.
            (Some(_), None, pol) => (None, pol.is_some()),
            (None, _, _) => (None, false),
        };
        // Keep the report focused: only carry unchanged metrics when
        // they are gated (so --json consumers can audit coverage).
        if ov == nv && pol.is_none() {
            continue;
        }
        rep.deltas.push(Delta {
            path: path.clone(),
            old: ov,
            new: nv,
            rel,
            policy: pol,
            regression,
        });
    }
    rep
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), fmt_num)
}

fn fmt_rel(d: &Delta) -> String {
    match d.rel {
        Some(r) => format!("{:+.1}%", r * 100.0),
        None => match (d.old, d.new) {
            (Some(_), None) => "removed".to_string(),
            (None, Some(_)) => "new".to_string(),
            _ => "-".to_string(),
        },
    }
}

/// Renders the human-readable diff report.
#[must_use]
pub fn render_text(rep: &DiffReport) -> String {
    let mut out = String::new();
    let regs: Vec<&Delta> = rep.regressions().collect();
    let _ = writeln!(
        out,
        "bench-diff: {} gated metric(s) checked, {} regression(s)",
        rep.gated,
        regs.len()
    );
    for d in &regs {
        let _ = writeln!(
            out,
            "  REGRESSION {}: {} -> {} ({})",
            d.path,
            fmt_opt(d.old),
            fmt_opt(d.new),
            fmt_rel(d)
        );
    }
    let moved: Vec<&Delta> = rep
        .deltas
        .iter()
        .filter(|d| !d.regression && d.old != d.new)
        .collect();
    if !moved.is_empty() {
        let _ = writeln!(out, "  {} non-gating change(s):", moved.len());
        for d in moved.iter().take(20) {
            let kind = if d.policy.is_some() { "ok " } else { "info" };
            let _ = writeln!(
                out,
                "    {kind} {}: {} -> {} ({})",
                d.path,
                fmt_opt(d.old),
                fmt_opt(d.new),
                fmt_rel(d)
            );
        }
        if moved.len() > 20 {
            let _ = writeln!(out, "    ... {} more", moved.len() - 20);
        }
    }
    let _ = writeln!(out, "result: {}", if rep.pass() { "PASS" } else { "FAIL" });
    out
}

/// Renders the machine-readable diff report.
#[must_use]
pub fn render_json(rep: &DiffReport) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"gated\": {},", rep.gated);
    let _ = writeln!(out, "  \"pass\": {},", rep.pass());
    out.push_str("  \"regressions\": [\n");
    let regs: Vec<&Delta> = rep.regressions().collect();
    for (i, d) in regs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"path\": \"{}\", \"old\": {}, \"new\": {}, \"change\": \"{}\"}}",
            d.path,
            fmt_opt(d.old),
            fmt_opt(d.new),
            fmt_rel(d)
        );
        out.push_str(if i + 1 < regs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let changed = rep
        .deltas
        .iter()
        .filter(|d| !d.regression && d.old != d.new)
        .count();
    let _ = writeln!(out, "  \"non_gating_changes\": {changed}");
    out.push_str("}\n");
    out
}

/// Re-renders a parsed JSON value (canonical: object keys sorted,
/// shortest-roundtrip numbers) — used to write baseline bundles.
#[must_use]
pub fn render_value(v: &Json, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    match v {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => fmt_num(*n),
        Json::Str(s) => format!("\"{}\"", escape(s)),
        Json::Arr(items) => {
            if items.is_empty() {
                return "[]".to_string();
            }
            let inner: Vec<String> = items.iter().map(|i| render_value(i, indent)).collect();
            format!("[{}]", inner.join(", "))
        }
        Json::Obj(map) => {
            if map.is_empty() {
                return "{}".to_string();
            }
            let mut out = String::from("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                let _ = write!(
                    out,
                    "{pad}  \"{}\": {}",
                    escape(k),
                    render_value(val, indent + 1)
                );
                out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
            }
            let _ = write!(out, "{pad}}}");
            out
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a bench set as a baseline bundle document.
#[must_use]
pub fn render_bundle(set: &BTreeMap<String, Json>) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"benches\": {\n");
    for (i, (name, doc)) in set.iter().enumerate() {
        let _ = write!(out, "    \"{}\": {}", escape(name), render_value(doc, 2));
        out.push_str(if i + 1 < set.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_from(src: &str) -> BTreeMap<String, f64> {
        let doc = json::parse(src).unwrap();
        let name = doc.get("bench").and_then(Json::as_str).unwrap().to_string();
        let mut set = BTreeMap::new();
        set.insert(name, doc);
        flatten_set(&set)
    }

    #[test]
    fn identical_sets_report_zero_regressions() {
        let a = set_from(r#"{"bench": "kernels", "matmul_gflops": {"blocked": 60.0}}"#);
        let rep = diff(&a, &a.clone());
        assert!(rep.pass());
        assert_eq!(rep.regressions().count(), 0);
        assert!(rep.gated >= 1);
    }

    #[test]
    fn gflops_slowdown_beyond_tolerance_is_flagged() {
        let old = set_from(r#"{"bench": "kernels", "matmul_gflops": {"blocked": 60.0}}"#);
        let new = set_from(r#"{"bench": "kernels", "matmul_gflops": {"blocked": 48.0}}"#);
        let rep = diff(&old, &new);
        assert!(!rep.pass());
        let regs: Vec<_> = rep.regressions().collect();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "kernels.matmul_gflops.blocked");
    }

    #[test]
    fn gflops_improvement_and_noise_pass() {
        let old = set_from(r#"{"bench": "kernels", "matmul_gflops": {"blocked": 60.0}}"#);
        for v in ["66.0", "55.0"] {
            let new = set_from(&format!(
                r#"{{"bench": "kernels", "matmul_gflops": {{"blocked": {v}}}}}"#
            ));
            assert!(diff(&old, &new).pass(), "value {v} must pass");
        }
    }

    #[test]
    fn virtual_time_metrics_gate_tightly() {
        let old = set_from(r#"{"bench": "serving", "two_tier": {"p99_latency_ms": 1.0}}"#);
        let ok = set_from(r#"{"bench": "serving", "two_tier": {"p99_latency_ms": 1.01}}"#);
        let bad = set_from(r#"{"bench": "serving", "two_tier": {"p99_latency_ms": 1.05}}"#);
        assert!(diff(&old, &ok).pass());
        assert!(!diff(&old, &bad).pass());
    }

    #[test]
    fn io_metrics_gate_tightly_and_geometry_is_config() {
        let old = set_from(
            r#"{"bench": "io", "page_bytes": 4096, "vip": {"bytes_read_per_epoch": 1000.0, "pages_faulted_per_epoch": 50.0}, "locality_gain": 2.0}"#,
        );
        assert!(
            !old.contains_key("io.page_bytes"),
            "page_bytes must not flatten into a gated metric"
        );
        let worse = set_from(
            r#"{"bench": "io", "page_bytes": 4096, "vip": {"bytes_read_per_epoch": 1100.0, "pages_faulted_per_epoch": 55.0}, "locality_gain": 1.5}"#,
        );
        let rep = diff(&old, &worse);
        assert!(!rep.pass());
        let paths: Vec<&str> = rep.regressions().map(|d| d.path.as_str()).collect();
        assert!(paths.contains(&"io.vip.bytes_read_per_epoch"), "{paths:?}");
        assert!(
            paths.contains(&"io.vip.pages_faulted_per_epoch"),
            "{paths:?}"
        );
        assert!(paths.contains(&"io.locality_gain"), "{paths:?}");
        // Small float-rendering jitter passes.
        let ok = set_from(
            r#"{"bench": "io", "page_bytes": 4096, "vip": {"bytes_read_per_epoch": 1001.0, "pages_faulted_per_epoch": 50.0}, "locality_gain": 2.0}"#,
        );
        assert!(diff(&old, &ok).pass());
    }

    #[test]
    fn removed_gated_metric_fails_and_config_keys_skip() {
        let old =
            set_from(r#"{"bench": "kernels", "seed": 7, "matmul_gflops": {"blocked": 60.0}}"#);
        let new = set_from(r#"{"bench": "kernels", "seed": 9}"#);
        assert!(
            !old.contains_key("kernels.seed"),
            "config key must not flatten"
        );
        let rep = diff(&old, &new);
        assert!(!rep.pass());
        assert!(rep
            .regressions()
            .any(|d| d.path == "kernels.matmul_gflops.blocked" && d.new.is_none()));
    }

    #[test]
    fn unknown_metrics_are_informational() {
        let old = set_from(r#"{"bench": "kernels", "mystery_units": 10.0}"#);
        let new = set_from(r#"{"bench": "kernels", "mystery_units": 2.0}"#);
        let rep = diff(&old, &new);
        assert!(rep.pass());
        assert_eq!(rep.deltas.len(), 1);
        assert!(rep.deltas[0].policy.is_none());
    }

    #[test]
    fn bundle_roundtrips_through_parser() {
        let doc = json::parse(
            r#"{"bench": "kernels", "matmul_gflops": {"blocked": 61.193}, "pass": true}"#,
        )
        .unwrap();
        let mut set = BTreeMap::new();
        set.insert("kernels".to_string(), doc);
        let bundle = render_bundle(&set);
        let re = json::parse(&bundle).unwrap();
        let back = re.get("benches").unwrap().get("kernels").unwrap();
        assert_eq!(
            back.get("matmul_gflops").unwrap().get("blocked").unwrap(),
            &Json::Num(61.193)
        );
        assert_eq!(back.get("pass").unwrap(), &Json::Bool(true));
    }
}
