//! Intra-workspace call graph and hot-root reachability.
//!
//! Nodes are the non-test `fn` items parsed by [`crate::items`]; edges
//! come from lexical call sites, resolved by name with nearest-scope
//! preference (same file, then same crate, then workspace-wide). The
//! resolution deliberately over-approximates — a method call `.get(..)`
//! links to every workspace `fn get(&self, ..)` its scope search
//! reaches — because the analyzer's job is to *prove absence* of
//! hazards on hot paths; spurious edges only make it stricter, and the
//! escape grammar (`// spp-hot: allow(..)`) documents the survivors.
//!
//! Qualified calls `Type::name(..)` resolve only to methods of a
//! workspace type named `Type`; qualifiers naming std types (`Vec`,
//! `Box`, ...) are external and produce no edge (the H1 token rules
//! catch their allocations lexically).

use crate::items::{AuditKind, FileItems, FnItem};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Std-library qualifiers whose associated calls never target
/// workspace items.
const STD_QUALIFIERS: [&str; 20] = [
    "Vec", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque", "Arc", "Rc",
    "Option", "Result", "Some", "Ok", "Err", "Ordering", "Duration", "Instant", "PathBuf", "Path",
];

/// Method names that collide with std container / iterator / sync /
/// thread APIs. A `.push(..)` in a crate with no `fn push` is almost
/// certainly `Vec::push`, not some other crate's `Ring::push` — so for
/// these names the workspace-wide fallback is disabled and resolution
/// stays within the calling crate (where a workspace type can genuinely
/// shadow std). Their effects are still checked lexically by the H1–H3
/// token rules in the calling function.
const STD_METHODS: [&str; 49] = [
    "add",
    "push",
    "pop",
    "insert",
    "remove",
    "extend",
    "clear",
    "drain",
    "clone",
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "join",
    "spawn",
    "lock",
    "read",
    "write",
    "wait",
    "notify_one",
    "notify_all",
    "send",
    "recv",
    "next",
    "get",
    "set",
    "iter",
    "into_iter",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "take",
    "replace",
    "swap",
    "sort",
    "map",
    "filter",
    "fold",
    "sum",
    "flush",
    "entry",
    "keys",
    "values",
    "truncate",
    "resize",
    "retain",
    "store",
    "load",
];

/// One call-graph node: a function item plus its owning file.
#[derive(Debug)]
pub struct Node {
    /// Index into the `FileItems` slice the graph was built from.
    pub file: usize,
    /// The parsed item.
    pub item: FnItem,
}

/// A resolved edge: `(callee node, 1-based call-site line)`.
pub type Edge = (usize, usize);

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// Outgoing edges per node, deterministically ordered and deduped
    /// by callee.
    pub edges: Vec<Vec<Edge>>,
}

/// One function reached from a hot root.
#[derive(Debug, Clone)]
pub struct Reached {
    /// Node index.
    pub node: usize,
    /// Hops from the root (root itself = 0).
    pub depth: usize,
    /// Name of the hot root that reached it first.
    pub root: String,
    /// Node index of the caller that reached it (None for roots).
    pub via: Option<usize>,
}

/// Crate key for scope resolution: the first two path components
/// (`crates/tensor`, `shims/rand`) or `src` for the facade crate.
fn crate_key(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some(a), Some(b)) if a == "crates" || a == "shims" => format!("{a}/{b}"),
        (Some(a), _) => a.to_string(),
        _ => String::new(),
    }
}

impl CallGraph {
    /// Builds the graph over all non-test items in `files`.
    pub fn build(files: &[FileItems]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for item in &file.fns {
                if item.in_test {
                    continue;
                }
                nodes.push(Node {
                    file: fi,
                    item: item.clone(),
                });
            }
        }
        // name -> node indices, plus qualified name -> node indices.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(&n.item.name).or_default().push(i);
            by_qual.entry(&n.item.qual).or_default().push(i);
        }
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            let my_file = n.file;
            let my_crate = crate_key(&files[my_file].rel_path);
            let mut out: Vec<Edge> = Vec::new();
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            for call in &n.item.calls {
                let candidates: Vec<usize> = if let Some(recv) = &call.recv {
                    // `Self::f(..)` means the enclosing impl type.
                    let recv: &str = if recv == "Self" && n.item.qual.contains("::") {
                        n.item.qual.split("::").next().unwrap_or(recv)
                    } else {
                        recv
                    };
                    if STD_QUALIFIERS.contains(&recv) {
                        Vec::new()
                    } else {
                        let q = format!("{recv}::{}", call.callee);
                        by_qual.get(q.as_str()).cloned().unwrap_or_default()
                    }
                } else {
                    let all = by_name
                        .get(call.callee.as_str())
                        .cloned()
                        .unwrap_or_default();
                    // Method syntax only targets items taking `self`;
                    // bare-name calls cannot invoke such methods.
                    let all: Vec<usize> = all
                        .into_iter()
                        .filter(|&j| nodes[j].item.has_self == call.method)
                        .collect();
                    // Nearest scope wins: same file, else same crate,
                    // else anywhere in the workspace — except for names
                    // shadowing std APIs, which never leave the crate.
                    let same_file: Vec<usize> = all
                        .iter()
                        .copied()
                        .filter(|&j| nodes[j].file == my_file)
                        .collect();
                    if !same_file.is_empty() {
                        same_file
                    } else {
                        let same_crate: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&j| crate_key(&files[nodes[j].file].rel_path) == my_crate)
                            .collect();
                        if !same_crate.is_empty() {
                            same_crate
                        } else if call.method && STD_METHODS.contains(&call.callee.as_str()) {
                            Vec::new()
                        } else {
                            all
                        }
                    }
                };
                for c in candidates {
                    if c != i && seen.insert(c) {
                        out.push((c, call.line));
                    }
                }
            }
            edges[i] = out;
        }
        CallGraph { nodes, edges }
    }

    /// Node indices of declared hot roots, ordered by root name.
    pub fn roots(&self) -> Vec<usize> {
        self.roots_for(AuditKind::Hot)
    }

    /// Node indices of declared roots of the given annotation family,
    /// ordered by root name.
    pub fn roots_for(&self, kind: AuditKind) -> Vec<usize> {
        let mut r: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].item.root_for(kind).is_some())
            .collect();
        r.sort_by(|&a, &b| {
            self.nodes[a]
                .item
                .root_for(kind)
                .cmp(&self.nodes[b].item.root_for(kind))
        });
        r
    }

    /// Hot-family traversal; see [`CallGraph::reach_for`].
    pub fn reach(&self, roots: &[usize]) -> Vec<Reached> {
        self.reach_for(roots, AuditKind::Hot)
    }

    /// Multi-source BFS from `roots`, following the stop boundaries of
    /// the given annotation family. Each reached node is attributed to
    /// the first root that reaches it (breadth-first, roots in the
    /// given order). Nodes with a `stop` annotation are recorded but
    /// not expanded. The traversal itself is family-independent: both
    /// passes walk the same edges, so identical root/stop placement
    /// yields identical reachable sets (pinned by the cross-pass test).
    pub fn reach_for(&self, roots: &[usize], kind: AuditKind) -> Vec<Reached> {
        let mut order: Vec<Reached> = Vec::new();
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        let mut queue: VecDeque<Reached> = VecDeque::new();
        for &r in roots {
            if visited.insert(r) {
                queue.push_back(Reached {
                    node: r,
                    depth: 0,
                    root: self.nodes[r]
                        .item
                        .root_for(kind)
                        .map(str::to_string)
                        .unwrap_or_else(|| self.nodes[r].item.qual.clone()),
                    via: None,
                });
            }
        }
        while let Some(cur) = queue.pop_front() {
            let node = cur.node;
            let stop = self.nodes[node].item.stop_for(kind).is_some();
            order.push(cur.clone());
            if stop {
                continue;
            }
            for &(callee, _line) in &self.edges[node] {
                if visited.insert(callee) {
                    queue.push_back(Reached {
                        node: callee,
                        depth: cur.depth + 1,
                        root: cur.root.clone(),
                        via: Some(node),
                    });
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::scan::scan_source;

    fn files(sources: &[(&str, &str)]) -> Vec<FileItems> {
        sources
            .iter()
            .map(|(p, s)| parse_items(&scan_source(p, s), s))
            .collect()
    }

    #[test]
    fn same_file_resolution_beats_workspace() {
        let fs = files(&[
            (
                "crates/a/src/lib.rs",
                "// spp-hot(a.root)\nfn root() {\n    helper();\n}\nfn helper() {}\n",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&fs);
        let roots = g.roots();
        assert_eq!(roots.len(), 1);
        let reach = g.reach(&roots);
        assert_eq!(reach.len(), 2);
        assert_eq!(g.nodes[reach[1].node].file, 0);
        assert_eq!(reach[1].depth, 1);
    }

    #[test]
    fn qualified_calls_resolve_to_impl_methods_only() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root() {\n    Widget::make();\n    Vec::new();\n}\nimpl Widget {\n    fn make() {}\n}\nfn new() {}\n",
        )]);
        let g = CallGraph::build(&fs);
        let reach = g.reach(&g.roots());
        let names: Vec<&str> = reach
            .iter()
            .map(|r| g.nodes[r.node].item.qual.as_str())
            .collect();
        assert!(names.contains(&"Widget::make"));
        // `Vec::new()` is external: the free `fn new` must NOT be linked.
        assert!(!names.contains(&"new"));
    }

    #[test]
    fn stop_nodes_are_recorded_but_not_expanded() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root() {\n    cold();\n}\n// spp-hot: stop(registration)\nfn cold() {\n    deep();\n}\nfn deep() {}\n",
        )]);
        let g = CallGraph::build(&fs);
        let reach = g.reach(&g.roots());
        let names: Vec<&str> = reach
            .iter()
            .map(|r| g.nodes[r.node].item.name.as_str())
            .collect();
        assert!(names.contains(&"cold"));
        assert!(!names.contains(&"deep"));
    }

    #[test]
    fn method_calls_skip_free_functions() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root(x: &W) {\n    x.work();\n}\nfn work() {}\nimpl W {\n    fn work(&self) {}\n}\n",
        )]);
        let g = CallGraph::build(&fs);
        let reach = g.reach(&g.roots());
        let quals: Vec<&str> = reach
            .iter()
            .map(|r| g.nodes[r.node].item.qual.as_str())
            .collect();
        assert!(quals.contains(&"W::work"));
        assert!(!quals.contains(&"work"));
    }

    #[test]
    fn std_method_names_do_not_cross_crates() {
        // `.push(..)` in crate a (which defines no `fn push`) must be
        // treated as `Vec::push`, not linked to crate b's `Ring::push`.
        let fs = files(&[
            (
                "crates/a/src/lib.rs",
                "// spp-hot(a.root)\nfn root(v: &mut Vec<u32>) {\n    v.push(1); // spp-hot: alloc(test)\n}\n",
            ),
            ("crates/b/src/lib.rs", "impl Ring {\n    fn push(&mut self, x: u32) {}\n}\n"),
        ]);
        let g = CallGraph::build(&fs);
        let reach = g.reach(&g.roots());
        assert_eq!(reach.len(), 1, "push must not leave crate a");
    }

    #[test]
    fn std_method_names_still_resolve_within_crate() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root(q: &mut Q) {\n    q.drain();\n}\nimpl Q {\n    fn drain(&mut self) {}\n}\n",
        )]);
        let g = CallGraph::build(&fs);
        let reach = g.reach(&g.roots());
        let quals: Vec<&str> = reach
            .iter()
            .map(|r| g.nodes[r.node].item.qual.as_str())
            .collect();
        assert!(quals.contains(&"Q::drain"));
    }

    #[test]
    fn bare_calls_skip_self_methods() {
        // A local closure invoked as `run(i)` must not link to a
        // method `fn run(&self)` elsewhere in the workspace.
        let fs = files(&[
            (
                "crates/a/src/lib.rs",
                "// spp-hot(a.root)\nfn root() {\n    let run = |i: usize| i;\n    run(3);\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "impl Sim {\n    fn run(&self) {}\n}\n",
            ),
        ]);
        let g = CallGraph::build(&fs);
        let reach = g.reach(&g.roots());
        assert_eq!(reach.len(), 1, "bare `run(..)` must not reach Sim::run");
    }

    #[test]
    fn self_qualified_calls_resolve_to_own_impl() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "impl W {\n    // spp-hot(a.root)\n    fn root(&self) {\n        Self::helper();\n    }\n    fn helper() {}\n}\n",
        )]);
        let g = CallGraph::build(&fs);
        let reach = g.reach(&g.roots());
        let quals: Vec<&str> = reach
            .iter()
            .map(|r| g.nodes[r.node].item.qual.as_str())
            .collect();
        assert!(quals.contains(&"W::helper"), "got {quals:?}");
    }

    #[test]
    fn det_roots_and_stops_are_independent_of_hot() {
        // One fn is a det root only; the hot pass must not see it, and
        // the det traversal must honor det stops while ignoring hot
        // stops.
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "// spp-det(a.det_root)\nfn droot() {\n    mid();\n}\nfn mid() {\n    deep();\n}\n// spp-det: stop(cold for det only)\nfn deep() {\n    deepest();\n}\nfn deepest() {}\n// spp-hot(a.hot_root)\nfn hroot() {\n    deep();\n}\n",
        )]);
        let g = CallGraph::build(&fs);
        assert_eq!(g.roots_for(AuditKind::Hot).len(), 1);
        assert_eq!(g.roots_for(AuditKind::Det).len(), 1);
        let det = g.reach_for(&g.roots_for(AuditKind::Det), AuditKind::Det);
        let det_names: Vec<&str> = det
            .iter()
            .map(|r| g.nodes[r.node].item.name.as_str())
            .collect();
        // det stop on `deep` is honored: recorded, not expanded.
        assert_eq!(det_names, ["droot", "mid", "deep"]);
        assert!(det.iter().all(|r| r.root == "a.det_root"));
        // The hot traversal ignores the det stop and descends through
        // `deep` into `deepest`.
        let hot = g.reach_for(&g.roots_for(AuditKind::Hot), AuditKind::Hot);
        let hot_names: Vec<&str> = hot
            .iter()
            .map(|r| g.nodes[r.node].item.name.as_str())
            .collect();
        assert_eq!(hot_names, ["hroot", "deep", "deepest"]);
    }

    #[test]
    fn test_items_are_outside_the_graph() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root() {\n    helper();\n}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        )]);
        let g = CallGraph::build(&fs);
        assert_eq!(g.nodes.len(), 1);
    }
}
