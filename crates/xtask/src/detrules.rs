//! The determinism rules D1–D5, applied transitively over the
//! reachable set computed by [`crate::callgraph`] (DESIGN.md §17).
//!
//! The §9 contract says every result is bit-identical across worker
//! counts and tracing on/off. The dynamic spot tests (workers 1/2/8)
//! sample that contract; this pass proves the *absence* of the source
//! constructs that break it, for every fn reachable from a
//! `// spp-det(<name>)` root:
//!
//! | id                 | invariant (for every fn reachable from a det root)       |
//! |--------------------|----------------------------------------------------------|
//! | `d1-unordered-iter`| no order-observing iteration over `HashMap`/`HashSet`    |
//! |                    | (construction and keyed lookup stay legal)               |
//! | `d2-unseeded-rng`  | no RNG draw outside the seeded per-stream discipline     |
//! |                    | (`thread_rng`/`from_entropy`/`OsRng`; `seed_from_u64`    |
//! |                    | over `batch_stream_seed` stays legal)                    |
//! | `d3-ambient-read`  | no ambient input: `env::var`, wall clock, `read_dir`     |
//! |                    | (file-system order) — outside the sanctioned telemetry / |
//! |                    | bench / DES homes                                        |
//! | `d4-worker-leak`   | no `available_parallelism` / thread-identity value on a  |
//! |                    | result path (worker count must schedule, never select)   |
//! | `d5-float-order`   | no float accumulation in a fn that iterates a hash       |
//! |                    | collection (H4 generalized beyond hot paths: reduction   |
//! |                    | order must be a pure function of shapes)                 |
//!
//! D1 and D5 fire on the same lexical signal (hash iteration); a hit
//! inside a float-accumulating fn is the stricter D5, otherwise D1.
//! Escapes: `// spp-det: allow(<rule>[, <rule>]): <reason>` on (or
//! directly above) the offending line. Every escape that fires is
//! inventoried in the baseline; an escape inside a reached fn that
//! suppresses nothing is itself a finding.

use crate::callgraph::{CallGraph, Reached};
use crate::hotrules::{line_owner, token_hits, EscapeSite, HotFinding, FLOAT_ACC_TOKENS};
use crate::items::{AuditKind, FileItems};
use crate::rules::{hash_collection_names, hash_iteration};
use crate::scan::SourceFile;
use std::collections::BTreeSet;

/// D2: RNG sources that are not a function of the logical stream
/// position. Seeded construction (`StdRng::seed_from_u64(..)` over
/// `batch_stream_seed`) is the sanctioned path and matches none of
/// these.
const RNG_TOKENS: [&str; 5] = [
    "thread_rng(",
    "from_entropy(",
    "from_os_rng(",
    "OsRng",
    "rand::random(",
];

/// D3: ambient inputs — process environment, wall clock, file-system
/// iteration order.
const AMBIENT_TOKENS: [&str; 6] = [
    "env::var(",
    "env::var_os(",
    "env::vars(",
    "Instant::now(",
    "SystemTime::now(",
    "read_dir(",
];

/// D4: worker-count and thread-identity sources.
const WORKER_TOKENS: [&str; 3] = ["available_parallelism(", "thread::current(", "ThreadId"];

/// Sanctioned ambient homes, mirroring the L6 exemption: the telemetry
/// crate (its clock and env-gated exporters never flow into results —
/// that is exactly the tracing-on/off half of the §9 contract), the
/// bench harness (reports wall time by trade), and the DES (virtual
/// clock; its tests compare against wall time).
fn ambient_sanctioned(path: &str) -> bool {
    path.starts_with("crates/telemetry/src")
        || path.starts_with("crates/bench/")
        || path == "crates/comm/src/des.rs"
}

/// Output of the transitive determinism pass. Findings reuse the
/// generic record shape of the hotpath pass.
#[derive(Debug, Default)]
pub struct DetReport {
    /// Unsuppressed violations plus annotation problems, sorted.
    pub findings: Vec<HotFinding>,
    /// Escapes that fired, sorted; the baseline inventory.
    pub escapes: Vec<EscapeSite>,
}

/// Checks every reached fn against D1–D5.
///
/// `files` and `scanned` are parallel (same indices as the graph's
/// `Node::file`).
pub fn check_reachable(
    files: &[FileItems],
    scanned: &[SourceFile],
    graph: &CallGraph,
    reach: &[Reached],
) -> DetReport {
    let mut findings: Vec<HotFinding> = Vec::new();
    let mut used_escapes: BTreeSet<(usize, usize)> = BTreeSet::new(); // (file, escape idx)

    // Annotation problems are findings regardless of reachability.
    for file in files {
        for (line, msg) in &file.det_bad {
            findings.push(HotFinding {
                path: file.rel_path.clone(),
                line: *line,
                rule: "det-annotation".to_string(),
                func: String::new(),
                root: String::new(),
                message: msg.clone(),
            });
        }
    }

    // Hash-collection names per file, computed once for D1/D5.
    let hash_names: Vec<Vec<String>> = scanned.iter().map(hash_collection_names).collect();

    fn suppress(
        files: &[FileItems],
        file_idx: usize,
        line: usize,
        rule: &str,
        used: &mut BTreeSet<(usize, usize)>,
    ) -> bool {
        let mut hit = false;
        for (ei, e) in files[file_idx].det_escapes.iter().enumerate() {
            if e.line == line && e.rules.contains(rule) {
                used.insert((file_idx, ei));
                hit = true;
            }
        }
        hit
    }

    for r in reach {
        let node = &graph.nodes[r.node];
        if node.item.det_stop.is_some() {
            continue;
        }
        let fi = node.file;
        let file = &files[fi];
        let sf = &scanned[fi];
        let sanctioned = ambient_sanctioned(&file.rel_path);
        // D5 precondition: does this fn accumulate floats anywhere?
        let mut accumulates = false;
        for idx in node.item.start..=node.item.end.min(sf.lines.len().saturating_sub(1)) {
            if line_owner(file, idx).is_some_and(|o| file.fns[o].start != node.item.start) {
                continue;
            }
            if !token_hits(&sf.lines[idx].cleaned, &FLOAT_ACC_TOKENS).is_empty() {
                accumulates = true;
                break;
            }
        }
        for idx in node.item.start..=node.item.end.min(sf.lines.len().saturating_sub(1)) {
            // Innermost-item attribution: skip lines of nested fns.
            if line_owner(file, idx).is_some_and(|o| file.fns[o].start != node.item.start) {
                continue;
            }
            let t = &sf.lines[idx].cleaned;
            let lineno = idx + 1;
            // (rule, message) pairs for this line, suppressed below.
            let mut line_hits: Vec<(&str, String)> = Vec::new();
            // D1/D5: order-observing hash iteration. Inside a
            // float-accumulating fn the hazard is the stricter D5.
            if let Some(name) = hash_iteration(t, &hash_names[fi]) {
                if accumulates {
                    line_hits.push((
                        "d5-float-order",
                        format!(
                            "float accumulation over hash collection `{name}` \
                             (reached from det root `{}`): the reduction order \
                             is not a pure function of shapes — iterate an \
                             index-ordered view instead",
                            r.root
                        ),
                    ));
                } else {
                    line_hits.push((
                        "d1-unordered-iter",
                        format!(
                            "order-observing iteration over hash collection \
                             `{name}` (reached from det root `{}` at depth {}): \
                             RandomState order leaks into results — use an \
                             index vector, sorted drain, or BTreeMap",
                            r.root, r.depth
                        ),
                    ));
                }
            }
            // D2: unseeded RNG.
            for tok in token_hits(t, &RNG_TOKENS) {
                line_hits.push((
                    "d2-unseeded-rng",
                    format!(
                        "`{tok}` draws entropy outside the seeded per-stream \
                         discipline (reached from det root `{}`); derive the \
                         stream via StdRng::seed_from_u64(batch_stream_seed(..))",
                        r.root
                    ),
                ));
            }
            // D3: ambient reads (outside sanctioned homes).
            if !sanctioned {
                for tok in token_hits(t, &AMBIENT_TOKENS) {
                    line_hits.push((
                        "d3-ambient-read",
                        format!(
                            "`{tok}` reads ambient state (reached from det root \
                             `{}` at depth {}); results must be a function of \
                             inputs and seeds only — plumb the value through \
                             config, or annotate a scheduling-only use",
                            r.root, r.depth
                        ),
                    ));
                }
            }
            // D4: worker-count / thread-identity values.
            if !sanctioned {
                for tok in token_hits(t, &WORKER_TOKENS) {
                    line_hits.push((
                        "d4-worker-leak",
                        format!(
                            "`{tok}` exposes worker count or thread identity \
                             (reached from det root `{}`); such values may \
                             schedule work but must never select or shape \
                             results — annotate if this use is scheduling-only",
                            r.root
                        ),
                    ));
                }
            }
            for (rule, message) in line_hits {
                if !suppress(files, fi, lineno, rule, &mut used_escapes) {
                    findings.push(HotFinding {
                        path: file.rel_path.clone(),
                        line: lineno,
                        rule: rule.to_string(),
                        func: node.item.qual.clone(),
                        root: r.root.clone(),
                        message,
                    });
                }
            }
        }
    }

    // Stale escapes: annotations inside reached fns that fired nothing.
    let reached_starts: BTreeSet<(usize, usize)> = reach
        .iter()
        .filter(|r| graph.nodes[r.node].item.det_stop.is_none())
        .map(|r| (graph.nodes[r.node].file, graph.nodes[r.node].item.start))
        .collect();
    let mut escapes: Vec<EscapeSite> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (ei, e) in file.det_escapes.iter().enumerate() {
            if used_escapes.contains(&(fi, ei)) {
                escapes.push(EscapeSite {
                    path: file.rel_path.clone(),
                    line: e.line,
                    rules: e.rules.iter().cloned().collect::<Vec<_>>().join(","),
                    reason: e.reason.clone(),
                });
                continue;
            }
            let owner = line_owner(file, e.line.saturating_sub(1));
            if owner.is_some_and(|o| reached_starts.contains(&(fi, file.fns[o].start))) {
                findings.push(HotFinding {
                    path: file.rel_path.clone(),
                    line: e.line,
                    rule: "det-annotation".to_string(),
                    func: owner.map(|o| file.fns[o].qual.clone()).unwrap_or_default(),
                    root: String::new(),
                    message: format!(
                        "stale escape: `spp-det: allow({})` suppresses \
                         nothing on this line — remove the annotation",
                        e.rules.iter().cloned().collect::<Vec<_>>().join(",")
                    ),
                });
            }
        }
    }

    findings.sort();
    findings.dedup();
    escapes.sort();
    escapes.dedup();
    DetReport { findings, escapes }
}

/// Convenience: det roots + det traversal + check, in one call.
pub fn audit(files: &[FileItems], scanned: &[SourceFile], graph: &CallGraph) -> DetReport {
    let roots = graph.roots_for(AuditKind::Det);
    let reach = graph.reach_for(&roots, AuditKind::Det);
    check_reachable(files, scanned, graph, &reach)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::scan::scan_source;

    fn analyze(sources: &[(&str, &str)]) -> DetReport {
        let scanned: Vec<SourceFile> = sources.iter().map(|(p, s)| scan_source(p, s)).collect();
        let files: Vec<FileItems> = scanned
            .iter()
            .zip(sources.iter())
            .map(|(sf, (_, s))| parse_items(sf, s))
            .collect();
        let graph = CallGraph::build(&files);
        audit(&files, &scanned, &graph)
    }

    #[test]
    fn hash_drain_two_calls_below_root_is_d1() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-det(a.root)\nfn root() {\n    mid();\n}\nfn mid() {\n    deep();\n}\nfn deep(m: &mut HashMap<u32, u32>) -> Vec<(u32, u32)> {\n    m.drain().collect()\n}\n",
        )]);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].rule, "d1-unordered-iter");
        assert_eq!(rep.findings[0].func, "deep");
        assert_eq!(rep.findings[0].root, "a.root");
    }

    #[test]
    fn keyed_lookup_stays_legal() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-det(a.root)\nfn root(m: &HashMap<u32, u32>) -> Option<u32> {\n    m.get(&3).copied()\n}\n",
        )]);
        assert!(rep.findings.is_empty());
    }

    #[test]
    fn unseeded_rng_is_d2_but_seeded_stream_is_legal() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-det(a.root)\nfn root(seed: u64) -> u64 {\n    let mut r = StdRng::seed_from_u64(seed);\n    let t = thread_rng();\n    0\n}\n",
        )]);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].rule, "d2-unseeded-rng");
        assert_eq!(rep.findings[0].line, 4);
    }

    #[test]
    fn ambient_env_read_is_d3_outside_sanctioned_homes() {
        let src = "// spp-det(a.root)\nfn root() -> Option<String> {\n    std::env::var(\"SPP_X\").ok()\n}\n";
        let rep = analyze(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].rule, "d3-ambient-read");
        let sanctioned = analyze(&[("crates/telemetry/src/export.rs", src)]);
        assert!(sanctioned.findings.is_empty());
    }

    #[test]
    fn worker_count_on_result_path_is_d4() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-det(a.root)\nfn root() -> usize {\n    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n}\n",
        )]);
        assert!(rep.findings.iter().any(|f| f.rule == "d4-worker-leak"));
    }

    #[test]
    fn hash_iteration_in_float_accumulating_fn_is_d5_not_d1() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-det(a.root)\nfn root(w: &HashMap<u32, f64>) -> f64 {\n    let mut acc = 0.0;\n    for (_k, v) in w.iter() {\n        acc += v;\n    }\n    acc\n}\n",
        )]);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].rule, "d5-float-order");
    }

    #[test]
    fn escape_suppresses_and_is_inventoried() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-det(a.root)\nfn root() -> usize {\n    // spp-det: allow(d4-worker-leak): sizes scratch only, never results\n    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n}\n",
        )]);
        assert!(rep.findings.is_empty());
        assert_eq!(rep.escapes.len(), 1);
        assert_eq!(rep.escapes[0].rules, "d4-worker-leak");
    }

    #[test]
    fn stale_det_escape_is_flagged() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-det(a.root)\nfn root() {\n    let x = 1; // spp-det: allow(d3-ambient-read): nothing here\n    let _ = x;\n}\n",
        )]);
        assert!(rep
            .findings
            .iter()
            .any(|f| f.rule == "det-annotation" && f.message.contains("stale escape")));
    }

    #[test]
    fn det_stop_boundary_suppresses_checks() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-det(a.root)\nfn root() {\n    cold();\n}\n// spp-det: stop(report assembly; off the result path)\nfn cold() {\n    let _ = std::time::Instant::now();\n}\n",
        )]);
        assert!(rep.findings.is_empty());
    }

    #[test]
    fn hot_only_roots_are_invisible_to_the_det_pass() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.hot)\nfn hot_entry() {\n    let t = thread_rng();\n}\n",
        )]);
        assert!(rep.findings.is_empty());
    }
}
