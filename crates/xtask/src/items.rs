//! Function-item and call-site parser for the call-graph analyzers.
//!
//! Works on the *cleaned* per-line view from [`crate::scan`] (comments
//! and literal contents blanked), so brace tracking and identifier
//! extraction never trip over strings or comments. This is still a
//! lexical pass, not a full parse: items are recovered by accumulating
//! the "header" text between block boundaries (`{`, `}`, `;`) and
//! classifying each opened brace as a `fn` body, an `impl` block, or
//! an uninteresting block. That is sufficient for call-graph
//! construction, where over-approximation is acceptable (DESIGN.md
//! §13).
//!
//! Two annotation families share one grammar, read from the *raw*
//! lines (the cleaning pass blanks comments): `spp-hot` for the
//! hot-path pass (H1–H4, DESIGN.md §13) and `spp-det` for the
//! determinism pass (D1–D5, DESIGN.md §17):
//!
//! - `// spp-hot(<name>)` / `// spp-det(<name>)` — declares the next
//!   `fn` item (or the item whose signature shares the line) as a root
//!   named `<name>`;
//! - `// spp-hot: stop(<reason>)` / `// spp-det: stop(<reason>)` —
//!   marks the next `fn` as a cold boundary: traversal records it but
//!   does not check its body or descend into its callees;
//! - `// spp-hot: alloc(<reason>)` — escape shorthand for `h1-alloc`
//!   on this line (trailing) or the next line (standalone comment;
//!   hot family only);
//! - `// spp-hot: allow(<rule>[, <rule>]): <reason>` /
//!   `// spp-det: allow(<rule>[, <rule>]): <reason>` — general escape
//!   for the listed rules, same line placement rules.

use crate::scan::SourceFile;
use std::collections::BTreeSet;

/// All hot-path rule ids, for annotation validation and `--json`
/// counts.
pub const HOT_RULE_IDS: [&str; 4] = ["h1-alloc", "h2-panic", "h3-lock", "h4-float-order"];

/// All determinism rule ids (DESIGN.md §17), for annotation validation
/// and `--json` counts.
pub const DET_RULE_IDS: [&str; 5] = [
    "d1-unordered-iter",
    "d2-unseeded-rng",
    "d3-ambient-read",
    "d4-worker-leak",
    "d5-float-order",
];

/// Which annotation family a traversal follows: the hot-path pass
/// (`spp-hot` roots/stops) or the determinism pass (`spp-det`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    Hot,
    Det,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee identifier (bare name, e.g. `hop_update` or `probe`).
    pub callee: String,
    /// Path qualifier when the call was `Type::callee(..)`; `None` for
    /// free and method calls.
    pub recv: Option<String>,
    /// True for `.callee(..)` method syntax.
    pub method: bool,
    /// 1-based line number.
    pub line: usize,
}

/// A parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Display name: `Type::name` inside an `impl` block, else `name`.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based inclusive line range: signature through closing brace.
    pub start: usize,
    pub end: usize,
    /// True when the item lies in a `#[cfg(test)]` region.
    pub in_test: bool,
    /// True when the signature takes `self` (method); used to restrict
    /// `.name(..)` resolution to methods.
    pub has_self: bool,
    /// Hot-root name from `// spp-hot(<name>)`.
    pub hot_root: Option<String>,
    /// Cold-boundary reason from `// spp-hot: stop(<reason>)`.
    pub stop: Option<String>,
    /// Determinism-root name from `// spp-det(<name>)`.
    pub det_root: Option<String>,
    /// Cold-boundary reason from `// spp-det: stop(<reason>)`.
    pub det_stop: Option<String>,
    /// Call sites extracted from the body (innermost-item attribution:
    /// lines of a nested `fn` belong to the nested item only).
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// The root name this item declares for `kind`, if any.
    pub fn root_for(&self, kind: AuditKind) -> Option<&str> {
        match kind {
            AuditKind::Hot => self.hot_root.as_deref(),
            AuditKind::Det => self.det_root.as_deref(),
        }
    }

    /// The cold-boundary reason this item declares for `kind`, if any.
    pub fn stop_for(&self, kind: AuditKind) -> Option<&str> {
        match kind {
            AuditKind::Hot => self.stop.as_deref(),
            AuditKind::Det => self.det_stop.as_deref(),
        }
    }
}

/// One `// spp-hot: alloc(..)` / `allow(..): ..` (or the `spp-det`
/// equivalent) escape annotation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct HotEscape {
    /// 1-based line the escape applies to.
    pub line: usize,
    /// Rule ids this escape covers.
    pub rules: BTreeSet<String>,
    /// Mandatory justification.
    pub reason: String,
}

/// Parsed items and annotations for one source file.
#[derive(Debug)]
pub struct FileItems {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Items in source order.
    pub fns: Vec<FnItem>,
    /// `spp-hot` escape annotations keyed by target line.
    pub escapes: Vec<HotEscape>,
    /// Malformed `spp-hot` annotations: (1-based line, message).
    pub bad: Vec<(usize, String)>,
    /// `spp-det` escape annotations keyed by target line.
    pub det_escapes: Vec<HotEscape>,
    /// Malformed `spp-det` annotations: (1-based line, message).
    pub det_bad: Vec<(usize, String)>,
}

impl FileItems {
    /// The escape annotations of the given family.
    pub fn escapes_for(&self, kind: AuditKind) -> &[HotEscape] {
        match kind {
            AuditKind::Hot => &self.escapes,
            AuditKind::Det => &self.det_escapes,
        }
    }

    /// The malformed-annotation findings of the given family.
    pub fn bad_for(&self, kind: AuditKind) -> &[(usize, String)] {
        match kind {
            AuditKind::Hot => &self.bad,
            AuditKind::Det => &self.det_bad,
        }
    }
}

/// Keywords and binding forms that look like calls lexically
/// (`if (..)`, `Some(..)`) but are not function calls we resolve.
/// Uppercase-initial identifiers (tuple-struct/enum constructors) are
/// filtered separately.
const NON_CALL_KEYWORDS: [&str; 18] = [
    "if", "while", "for", "match", "return", "fn", "loop", "move", "in", "as", "let", "else",
    "unsafe", "await", "ref", "mut", "where", "box",
];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extracts the identifier ending at byte offset `end` (exclusive).
fn ident_before(s: &str, end: usize) -> Option<&str> {
    let mut start = end;
    for (i, c) in s[..end].char_indices().rev() {
        if is_ident_char(c) {
            start = i;
        } else {
            break;
        }
    }
    if start == end {
        None
    } else {
        Some(&s[start..end])
    }
}

/// Parses the impl target type from an accumulated header, e.g.
/// `impl<T: Clone> fmt::Display for Matrix<T>` -> `Matrix`.
fn impl_target(header: &str) -> Option<String> {
    let pos = *crate::rules::token_positions(header, "impl").first()?;
    let mut rest = header[pos + 4..].trim_start();
    // Skip the generic parameter list, tracking <> depth.
    if let Some(stripped) = rest.strip_prefix('<') {
        let mut depth = 1i32;
        let mut cut = stripped.len();
        for (i, c) in stripped.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = stripped[cut.min(stripped.len())..].trim_start();
    }
    // `impl Trait for Type` -> take the type after `for`.
    if let Some(p) = crate::rules::token_positions(rest, "for").first() {
        rest = rest[p + 3..].trim_start();
    }
    // Last path segment of the leading path, stopping at `<`/`{`/space.
    let head: &str = rest
        .split(|c: char| c == '<' || c == '{' || c.is_whitespace())
        .next()
        .unwrap_or("");
    let seg = head.rsplit("::").next().unwrap_or(head);
    let seg: String = seg.chars().filter(|c| is_ident_char(*c)).collect();
    if seg.is_empty() {
        None
    } else {
        Some(seg)
    }
}

/// Extracts `fn <name>` from a header; returns `(name, byte_offset)` of
/// the `fn` token. Headers like `f: fn(u32) -> u32` (fn-pointer types)
/// yield no name and are rejected.
fn fn_name(header: &str) -> Option<(String, usize)> {
    for pos in crate::rules::token_positions(header, "fn") {
        let rest = header[pos + 2..].trim_start();
        let name: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
        if !name.is_empty() {
            return Some((name, pos));
        }
    }
    None
}

#[derive(Debug)]
enum Ctx {
    /// Index into `fns`.
    Fn(usize),
    Impl(String),
    Other,
}

/// Parameters distinguishing the `spp-hot` and `spp-det` annotation
/// families; the grammar is otherwise identical.
struct MarkerSpec {
    /// Comment marker, e.g. `spp-hot`.
    marker: &'static str,
    /// Rule ids `allow(..)` lists may reference.
    rule_ids: &'static [&'static str],
    /// Whether the `alloc(<reason>)` shorthand (== `allow(h1-alloc)`)
    /// is part of this family's grammar.
    alloc_shorthand: bool,
}

const HOT_SPEC: MarkerSpec = MarkerSpec {
    marker: "spp-hot",
    rule_ids: &HOT_RULE_IDS,
    alloc_shorthand: true,
};

const DET_SPEC: MarkerSpec = MarkerSpec {
    marker: "spp-det",
    rule_ids: &DET_RULE_IDS,
    alloc_shorthand: false,
};

/// Parses one annotation family from the raw lines.
///
/// Returns `(roots, stops, escapes, bad)` where roots/stops are
/// `(0-based line, payload)` pairs attached to items later.
#[allow(clippy::type_complexity)]
fn parse_marker_annotations(
    raw_lines: &[&str],
    spec: &MarkerSpec,
) -> (
    Vec<(usize, String)>,
    Vec<(usize, String)>,
    Vec<HotEscape>,
    Vec<(usize, String)>,
) {
    let mut roots = Vec::new();
    let mut stops = Vec::new();
    let mut escapes = Vec::new();
    let mut bad = Vec::new();
    let m = spec.marker;
    for (idx, raw) in raw_lines.iter().enumerate() {
        let Some(pos) = raw.find(m) else {
            continue;
        };
        let after = &raw[pos + m.len()..];
        let malformed = |msg: &str| {
            let alloc_form = if spec.alloc_shorthand {
                format!("`{m}: alloc(<reason>)`, or ")
            } else {
                String::new()
            };
            (
                idx + 1,
                format!(
                    "malformed {m} annotation: {msg}; expected `{m}(<name>)`, \
                     `{m}: stop(<reason>)`, {alloc_form}\
                     `{m}: allow(<rule>[, <rule>]): <reason>`"
                ),
            )
        };
        if let Some(body) = after.strip_prefix('(') {
            // <marker>(<name>): root declaration.
            let Some(close) = body.find(')') else {
                bad.push(malformed("unclosed root name"));
                continue;
            };
            let name = body[..close].trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| is_ident_char(c) || c == '-' || c == '.')
            {
                bad.push(malformed("root name must be a dotted identifier"));
                continue;
            }
            roots.push((idx, name.to_string()));
            continue;
        }
        let Some(rest) = after.strip_prefix(':') else {
            bad.push(malformed(&format!("missing `(` or `:` after {m}")));
            continue;
        };
        let rest = rest.trim_start();
        if let Some(body) = rest.strip_prefix("stop(") {
            let Some(close) = body.rfind(')') else {
                bad.push(malformed("unclosed stop reason"));
                continue;
            };
            let reason = body[..close].trim();
            if reason.is_empty() {
                bad.push(malformed("stop requires a reason"));
                continue;
            }
            stops.push((idx, reason.to_string()));
            continue;
        }
        // Line escapes: trailing applies to this line, standalone
        // comment applies to the next (same convention as spp-lint).
        let target = if raw.trim_start().starts_with("//") {
            idx + 2
        } else {
            idx + 1
        };
        if spec.alloc_shorthand {
            if let Some(body) = rest.strip_prefix("alloc(") {
                let Some(close) = body.rfind(')') else {
                    bad.push(malformed("unclosed alloc reason"));
                    continue;
                };
                let reason = body[..close].trim();
                if reason.is_empty() {
                    bad.push(malformed("alloc requires a reason"));
                    continue;
                }
                escapes.push(HotEscape {
                    line: target,
                    rules: ["h1-alloc".to_string()].into_iter().collect(),
                    reason: reason.to_string(),
                });
                continue;
            }
        }
        if let Some(body) = rest.strip_prefix("allow(") {
            let Some(close) = body.find(')') else {
                bad.push(malformed("unclosed allow rule list"));
                continue;
            };
            let mut rules = BTreeSet::new();
            let mut unknown = None;
            for r in body[..close].split(',') {
                let r = r.trim().to_ascii_lowercase();
                if r.is_empty() {
                    continue;
                }
                if !spec.rule_ids.contains(&r.as_str()) {
                    unknown = Some(r.clone());
                }
                rules.insert(r);
            }
            if let Some(u) = unknown {
                let label = m.strip_prefix("spp-").unwrap_or(m);
                bad.push(malformed(&format!("unknown {label} rule `{u}`")));
                continue;
            }
            let tail = body[close + 1..].trim();
            let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
            if rules.is_empty() || reason.is_empty() {
                bad.push(malformed("allow requires a rule list and a `: <reason>`"));
                continue;
            }
            escapes.push(HotEscape {
                line: target,
                rules,
                reason: reason.to_string(),
            });
            continue;
        }
        bad.push(malformed(&format!("unknown {m} form")));
    }
    (roots, stops, escapes, bad)
}

/// Extracts call sites from one cleaned line into `out`.
fn calls_on_line(cleaned: &str, lineno: usize, out: &mut Vec<CallSite>) {
    let bytes = cleaned.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        let Some(name) = ident_before(cleaned, i) else {
            continue;
        };
        let start = i - name.len();
        // Macro invocations (`panic!(`) and raw identifiers are not
        // workspace calls; the H-rules catch macros lexically.
        let before = cleaned[..start].trim_end();
        if before.ends_with('!') {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name)
            || name.chars().next().is_some_and(|c| c.is_uppercase())
            || name.chars().next().is_some_and(|c| c.is_numeric())
        {
            continue;
        }
        let method = cleaned[..start].ends_with('.');
        let recv = if cleaned[..start].ends_with("::") {
            ident_before(cleaned, start - 2).map(str::to_string)
        } else {
            None
        };
        // `name::<T>(..)` turbofish: the ident before `(` is the type
        // parameter, not the callee — skip (rare; over-approximation
        // already covers the interesting cases).
        out.push(CallSite {
            callee: name.to_string(),
            recv,
            method,
            line: lineno,
        });
    }
}

/// Parses function items, call sites, and both annotation families
/// from a scanned file. `src` is the raw source (for comment
/// annotations).
pub fn parse_items(file: &SourceFile, src: &str) -> FileItems {
    let raw_lines: Vec<&str> = src.split('\n').collect();
    let (root_marks, stop_marks, escapes, bad) = parse_marker_annotations(&raw_lines, &HOT_SPEC);
    let (det_root_marks, det_stop_marks, det_escapes, det_bad) =
        parse_marker_annotations(&raw_lines, &DET_SPEC);

    let mut fns: Vec<FnItem> = Vec::new();
    let mut stack: Vec<Ctx> = Vec::new();
    // Accumulated header text since the last `{`/`}`/`;`, with a
    // parallel per-byte line map so the `fn` token's line is exact.
    let mut header = String::new();
    let mut header_lines: Vec<usize> = Vec::new();

    for (idx, line) in file.lines.iter().enumerate() {
        for c in line.cleaned.chars() {
            match c {
                '{' => {
                    let ctx = if let Some((name, fpos)) = fn_name(&header) {
                        let sig_line = header_lines.get(fpos).copied().unwrap_or(idx);
                        let qual = stack
                            .iter()
                            .rev()
                            .find_map(|c| match c {
                                Ctx::Impl(t) => Some(format!("{t}::{name}")),
                                _ => None,
                            })
                            .unwrap_or_else(|| name.clone());
                        let has_self = crate::rules::token_positions(&header, "self")
                            .iter()
                            .any(|&p| p > fpos);
                        fns.push(FnItem {
                            name,
                            qual,
                            line: sig_line + 1,
                            start: sig_line,
                            end: idx,
                            in_test: file.lines.get(sig_line).is_some_and(|l| l.in_test),
                            has_self,
                            hot_root: None,
                            stop: None,
                            det_root: None,
                            det_stop: None,
                            calls: Vec::new(),
                        });
                        Ctx::Fn(fns.len() - 1)
                    } else if let Some(ty) = impl_target(&header) {
                        Ctx::Impl(ty)
                    } else {
                        Ctx::Other
                    };
                    stack.push(ctx);
                    header.clear();
                    header_lines.clear();
                }
                '}' => {
                    if let Some(Ctx::Fn(i)) = stack.pop() {
                        if let Some(f) = fns.get_mut(i) {
                            f.end = idx;
                        }
                    }
                    header.clear();
                    header_lines.clear();
                }
                ';' => {
                    header.clear();
                    header_lines.clear();
                }
                c => {
                    header.push(c);
                    for _ in 0..c.len_utf8() {
                        header_lines.push(idx);
                    }
                }
            }
        }
        header.push('\n');
        header_lines.push(idx);
    }

    // Attach root/stop annotations: each mark binds to the first item
    // whose signature line is >= the mark's line (i.e. the annotation
    // sits directly above the fn or trails its signature).
    let mut bad = bad;
    for (mark_line, name) in root_marks {
        match fns.iter_mut().find(|f| f.start >= mark_line) {
            Some(f) => f.hot_root = Some(name),
            None => bad.push((
                mark_line + 1,
                format!("spp-hot({name}) does not precede any fn item"),
            )),
        }
    }
    for (mark_line, reason) in stop_marks {
        match fns.iter_mut().find(|f| f.start >= mark_line) {
            Some(f) => f.stop = Some(reason),
            None => bad.push((
                mark_line + 1,
                "spp-hot: stop(..) does not precede any fn item".to_string(),
            )),
        }
    }
    let mut det_bad = det_bad;
    for (mark_line, name) in det_root_marks {
        match fns.iter_mut().find(|f| f.start >= mark_line) {
            Some(f) => f.det_root = Some(name),
            None => det_bad.push((
                mark_line + 1,
                format!("spp-det({name}) does not precede any fn item"),
            )),
        }
    }
    for (mark_line, reason) in det_stop_marks {
        match fns.iter_mut().find(|f| f.start >= mark_line) {
            Some(f) => f.det_stop = Some(reason),
            None => det_bad.push((
                mark_line + 1,
                "spp-det: stop(..) does not precede any fn item".to_string(),
            )),
        }
    }

    // Call-site extraction with innermost-item attribution: for each
    // line, the owning item is the one with the largest start <= line.
    for idx in 0..file.lines.len() {
        let owner = fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.start <= idx && idx <= f.end)
            .max_by_key(|(_, f)| f.start)
            .map(|(i, _)| i);
        let Some(owner) = owner else { continue };
        let mut sites = Vec::new();
        if let Some(line) = file.lines.get(idx) {
            calls_on_line(&line.cleaned, idx + 1, &mut sites);
        }
        // Drop the self-reference the signature line produces
        // (`fn name(..)` looks like a call to `name`).
        if idx == fns[owner].start {
            let own = fns[owner].name.clone();
            sites.retain(|s| s.callee != own || s.method || s.recv.is_some());
        }
        fns[owner].calls.extend(sites);
    }

    FileItems {
        rel_path: file.rel_path.clone(),
        fns,
        escapes,
        bad,
        det_escapes,
        det_bad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn parse(src: &str) -> FileItems {
        parse_items(&scan_source("x.rs", src), src)
    }

    #[test]
    fn finds_free_and_impl_fns_with_extents() {
        let src = "fn alpha() {\n    beta();\n}\n\nimpl Gamma {\n    pub fn beta(&self) -> u32 {\n        7\n    }\n}\n";
        let f = parse(src);
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "alpha");
        assert_eq!(f.fns[0].qual, "alpha");
        assert_eq!((f.fns[0].start, f.fns[0].end), (0, 2));
        assert_eq!(f.fns[1].qual, "Gamma::beta");
        assert!(f.fns[1].has_self);
        assert_eq!((f.fns[1].start, f.fns[1].end), (5, 7));
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src =
            "impl<T: Clone> fmt::Display for Matrix<T> {\n    fn fmt(&self) -> u32 { 0 }\n}\n";
        let f = parse(src);
        assert_eq!(f.fns[0].qual, "Matrix::fmt");
    }

    #[test]
    fn trait_method_declarations_have_no_body_item() {
        let src = "trait T {\n    fn decl(&self) -> u32;\n    fn with_default(&self) -> u32 {\n        1\n    }\n}\n";
        let f = parse(src);
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "with_default");
    }

    #[test]
    fn call_sites_free_method_and_qualified() {
        let src = "fn f() {\n    helper(1);\n    x.probe(2);\n    Matrix::zeros(3);\n    Vec::new();\n    Some(4);\n    if (a) {}\n    panic!(\"no\");\n}\n";
        let f = parse(src);
        let calls = &f.fns[0].calls;
        let names: Vec<&str> = calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"probe"));
        assert!(names.contains(&"zeros"));
        assert!(names.contains(&"new"));
        assert!(!names.contains(&"if"));
        assert!(!names.contains(&"Some"));
        assert!(!names.contains(&"panic"));
        let probe = calls.iter().find(|c| c.callee == "probe").unwrap();
        assert!(probe.method && probe.recv.is_none());
        let zeros = calls.iter().find(|c| c.callee == "zeros").unwrap();
        assert_eq!(zeros.recv.as_deref(), Some("Matrix"));
    }

    #[test]
    fn signature_line_self_reference_is_dropped() {
        let src = "fn fanout(fanout: u32) {\n    other();\n}\n";
        let f = parse(src);
        assert!(f.fns[0].calls.iter().all(|c| c.callee != "fanout"));
    }

    #[test]
    fn nested_fn_owns_its_lines() {
        let src = "fn outer() {\n    fn inner() {\n        leak();\n    }\n    outer_call();\n}\n";
        let f = parse(src);
        let outer = f.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = f.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.calls.iter().any(|c| c.callee == "outer_call"));
        assert!(outer.calls.iter().all(|c| c.callee != "leak"));
        assert!(inner.calls.iter().any(|c| c.callee == "leak"));
    }

    #[test]
    fn hot_root_and_stop_attach_to_next_fn() {
        let src = "// spp-hot(core.hop)\n#[inline]\nfn hop() {}\n\n// spp-hot: stop(cold registration)\nfn metrics() {}\n";
        let f = parse(src);
        assert_eq!(f.fns[0].hot_root.as_deref(), Some("core.hop"));
        assert_eq!(f.fns[1].stop.as_deref(), Some("cold registration"));
        assert!(f.bad.is_empty());
    }

    #[test]
    fn escapes_trailing_and_standalone() {
        let src = "fn f() {\n    v.push(1); // spp-hot: alloc(amortized)\n    // spp-hot: allow(h2-panic, h3-lock): fixture reason\n    x.unwrap();\n}\n";
        let f = parse(src);
        assert_eq!(f.escapes.len(), 2);
        assert_eq!(f.escapes[0].line, 2);
        assert!(f.escapes[0].rules.contains("h1-alloc"));
        assert_eq!(f.escapes[1].line, 4);
        assert!(f.escapes[1].rules.contains("h2-panic"));
        assert!(f.escapes[1].rules.contains("h3-lock"));
        assert_eq!(f.escapes[1].reason, "fixture reason");
    }

    #[test]
    fn malformed_annotations_are_reported() {
        let src = "// spp-hot: allow(h9-bogus): nope\nfn f() {}\n// spp-hot: alloc()\nfn g() {}\n";
        let f = parse(src);
        assert_eq!(f.bad.len(), 2);
        assert!(f.bad[0].1.contains("unknown hot rule"));
        assert!(f.det_bad.is_empty());
    }

    #[test]
    fn det_root_stop_and_escapes_parse_independently_of_hot() {
        let src = "// spp-det(core.vip_scores)\nfn scores() {}\n\n// spp-det: stop(report assembly)\nfn render() {}\n\nfn f() {\n    seed_env(); // spp-det: allow(d3-ambient-read): scheduling knob only\n}\n";
        let f = parse(src);
        assert_eq!(f.fns[0].det_root.as_deref(), Some("core.vip_scores"));
        assert!(f.fns[0].hot_root.is_none());
        assert_eq!(f.fns[1].det_stop.as_deref(), Some("report assembly"));
        assert!(f.fns[1].stop.is_none());
        assert_eq!(f.det_escapes.len(), 1);
        assert_eq!(f.det_escapes[0].line, 8);
        assert!(f.det_escapes[0].rules.contains("d3-ambient-read"));
        assert!(f.escapes.is_empty());
        assert!(f.det_bad.is_empty() && f.bad.is_empty());
    }

    #[test]
    fn det_family_rejects_alloc_shorthand_and_hot_rules() {
        let src = "// spp-det: alloc(nope)\nfn f() {}\n// spp-det: allow(h1-alloc): wrong family\nfn g() {}\n";
        let f = parse(src);
        assert_eq!(f.det_bad.len(), 2);
        assert!(f.det_bad[1].1.contains("unknown det rule"));
        assert!(f.bad.is_empty());
    }

    #[test]
    fn dual_hot_and_det_annotations_attach_to_one_fn() {
        let src = "// spp-hot(serve.classify)\n// spp-det(serve.classify)\nfn classify() {}\n";
        let f = parse(src);
        assert_eq!(f.fns[0].hot_root.as_deref(), Some("serve.classify"));
        assert_eq!(f.fns[0].det_root.as_deref(), Some("serve.classify"));
        assert_eq!(f.fns[0].root_for(AuditKind::Hot), Some("serve.classify"));
        assert_eq!(f.fns[0].root_for(AuditKind::Det), Some("serve.classify"));
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let src = "fn f(cb: fn(u32) -> u32) {\n    cb(1);\n}\n";
        let f = parse(src);
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "f");
    }

    #[test]
    fn multiline_string_does_not_break_extents() {
        let src =
            "fn f() {\n    let s = \"{ not a brace\n} still string\";\n    g();\n}\nfn h() {}\n";
        let f = parse(src);
        assert_eq!(f.fns.len(), 2);
        assert_eq!((f.fns[0].start, f.fns[0].end), (0, 4));
    }
}
