//! Workspace file discovery shared by `lint` and `audit-hotpaths`.

use std::path::{Path, PathBuf};

/// Locates the workspace root: `explicit` wins, else the xtask
/// manifest's grandparent (crates/xtask -> workspace).
pub fn workspace_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(r) = explicit {
        return Some(r);
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    Some(manifest.parent()?.parent()?.to_path_buf())
}

/// Recursively collects `.rs` files under `dir` into `out`.
pub fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative analysis targets, deterministically ordered:
/// `src/**` of every `crates/*` member and `shims/*` shim plus the
/// facade crate's `src/`, excluding binary targets (`**/bin/**`) and
/// the xtask itself.
pub fn lint_targets(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        if !dir.is_dir() {
            continue;
        }
        let mut members: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for m in members {
            if m.file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            collect_rs(&m.join("src"), &mut files)?;
        }
    }
    files.retain(|p| !p.components().any(|c| c.as_os_str() == "bin"));
    Ok(files)
}

/// Reads every target under `root` into `(rel_path, source)` pairs.
pub fn read_targets(root: &Path) -> Result<Vec<(String, String)>, String> {
    let targets = lint_targets(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut out = Vec::with_capacity(targets.len());
    for path in &targets {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, src));
    }
    Ok(out)
}
