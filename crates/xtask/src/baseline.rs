//! Committed-baseline comparison for the analysis gates.
//!
//! `results/lint_baseline.json` (from `lint --json`),
//! `results/hotpath_baseline.json` (from `audit-hotpaths --json`), and
//! `results/determinism_baseline.json` (from `audit-determinism
//! --json`) are snapshots the repo commits; CI and local runs fail when
//! the current analysis drifts from them in either direction:
//!
//! - a **new** entry means an invariant regression (or a new annotated
//!   escape that must be reviewed and re-inventoried);
//! - a **stale** entry means the baseline documents something that no
//!   longer fires — the snapshot lies about the code and must be
//!   refreshed.
//!
//! `--refresh-baseline` rewrites the snapshot after review, replacing
//! the manual redirect-and-commit dance.
//!
//! Lint entries compare exactly (file, line, rule, message) — the same
//! sensitivity as the verbatim `diff -u` CI has always run. Hot-path
//! and determinism entries compare *without* line numbers (roots by
//! name/fn, escapes by file/rules/reason, stops by file/fn/reason), so
//! unrelated edits that shift lines don't churn the baseline.

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Result of comparing current output against a committed baseline.
#[derive(Debug, PartialEq, Eq)]
pub enum BaselineStatus {
    /// No baseline file exists under the scanned root (e.g. fixture
    /// trees); nothing to compare.
    Missing,
    /// Baseline and current output agree.
    Clean,
    /// Entry-level differences, human-readable.
    Drift(Vec<String>),
}

/// Baseline path for the lint gate.
pub fn lint_baseline_path(root: &Path) -> PathBuf {
    root.join("results/lint_baseline.json")
}

/// Baseline path for the hot-path gate.
pub fn hotpath_baseline_path(root: &Path) -> PathBuf {
    root.join("results/hotpath_baseline.json")
}

/// Baseline path for the determinism gate.
pub fn det_baseline_path(root: &Path) -> PathBuf {
    root.join("results/determinism_baseline.json")
}

/// Compares two entry multisets; reports stale (baseline-only) and new
/// (current-only) entries under `label`.
fn diff_multiset(label: &str, baseline: &[String], current: &[String], out: &mut Vec<String>) {
    let mut counts: BTreeMap<&str, i64> = BTreeMap::new();
    for b in baseline {
        *counts.entry(b.as_str()).or_insert(0) += 1;
    }
    for c in current {
        *counts.entry(c.as_str()).or_insert(0) -= 1;
    }
    for (entry, n) in counts {
        use std::cmp::Ordering;
        match n.cmp(&0) {
            Ordering::Greater => out.push(format!("stale {label} (no longer fires): {entry}")),
            Ordering::Less => out.push(format!("new {label} (not in baseline): {entry}")),
            Ordering::Equal => {}
        }
    }
}

fn arr<'a>(doc: &'a Json, key: &str) -> Vec<&'a Json> {
    doc.get(key)
        .and_then(Json::as_arr)
        .map(|a| a.iter().collect())
        .unwrap_or_default()
}

fn s(v: &Json, key: &str) -> String {
    v.get(key).and_then(Json::as_str).unwrap_or("").to_string()
}

fn n(v: &Json, key: &str) -> i64 {
    v.get(key).and_then(Json::as_num).unwrap_or(0.0) as i64
}

/// Parses a baseline file; `Ok(None)` when the file does not exist.
fn load(path: &Path) -> Result<Option<Json>, String> {
    if !path.is_file() {
        return Ok(None);
    }
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    json::parse(&src)
        .map(Some)
        .map_err(|e| format!("{}: not valid JSON: {e}", path.display()))
}

/// Lint entry keys: exact, including line numbers.
fn lint_keys(doc: &Json) -> (Vec<String>, Vec<String>) {
    let findings = arr(doc, "findings")
        .into_iter()
        .map(|f| {
            format!(
                "[{}] {}:{} {}",
                s(f, "rule"),
                s(f, "file"),
                n(f, "line"),
                s(f, "message")
            )
        })
        .collect();
    let relaxed = arr(doc, "relaxed_sites")
        .into_iter()
        .map(|r| {
            format!(
                "{}:{} relaxed({})",
                s(r, "file"),
                n(r, "line"),
                s(r, "reason")
            )
        })
        .collect();
    (findings, relaxed)
}

/// Compares current `lint --json` output against the committed
/// baseline under `root`.
pub fn check_lint_baseline(root: &Path, current_json: &str) -> Result<BaselineStatus, String> {
    let Some(base) = load(&lint_baseline_path(root))? else {
        return Ok(BaselineStatus::Missing);
    };
    let cur = json::parse(current_json).map_err(|e| format!("current output: {e}"))?;
    let (bf, br) = lint_keys(&base);
    let (cf, cr) = lint_keys(&cur);
    let mut diffs = Vec::new();
    diff_multiset("finding", &bf, &cf, &mut diffs);
    diff_multiset("relaxed site", &br, &cr, &mut diffs);
    if diffs.is_empty() {
        Ok(BaselineStatus::Clean)
    } else {
        Ok(BaselineStatus::Drift(diffs))
    }
}

/// Call-graph audit entry keys: line-insensitive. `roots_key` selects
/// the root-inventory array (`hot_roots` / `det_roots`); the rest of
/// the document shape is shared between the two passes.
fn graph_audit_keys(
    doc: &Json,
    roots_key: &str,
) -> (Vec<String>, Vec<String>, Vec<String>, Vec<String>) {
    let roots = arr(doc, roots_key)
        .into_iter()
        .map(|r| format!("{} = {} ({})", s(r, "name"), s(r, "fn"), s(r, "file")))
        .collect();
    let escapes = arr(doc, "escapes")
        .into_iter()
        .map(|e| format!("{} [{}] {}", s(e, "file"), s(e, "rules"), s(e, "reason")))
        .collect();
    let stops = arr(doc, "stops")
        .into_iter()
        .map(|st| format!("{} {} ({})", s(st, "file"), s(st, "fn"), s(st, "reason")))
        .collect();
    let findings = arr(doc, "findings")
        .into_iter()
        .map(|f| {
            format!(
                "[{}] {} in {}: {}",
                s(f, "rule"),
                s(f, "file"),
                s(f, "fn"),
                s(f, "message")
            )
        })
        .collect();
    (roots, escapes, stops, findings)
}

/// Shared comparison body for the two call-graph audits.
fn check_graph_audit_baseline(
    baseline_path: &Path,
    current_json: &str,
    roots_key: &str,
    root_label: &str,
) -> Result<BaselineStatus, String> {
    let Some(base) = load(baseline_path)? else {
        return Ok(BaselineStatus::Missing);
    };
    let cur = json::parse(current_json).map_err(|e| format!("current output: {e}"))?;
    let (br, be, bs, bf) = graph_audit_keys(&base, roots_key);
    let (cr, ce, cs, cf) = graph_audit_keys(&cur, roots_key);
    let mut diffs = Vec::new();
    diff_multiset(root_label, &br, &cr, &mut diffs);
    diff_multiset("escape", &be, &ce, &mut diffs);
    diff_multiset("stop", &bs, &cs, &mut diffs);
    diff_multiset("finding", &bf, &cf, &mut diffs);
    if diffs.is_empty() {
        Ok(BaselineStatus::Clean)
    } else {
        Ok(BaselineStatus::Drift(diffs))
    }
}

/// Compares current `audit-hotpaths --json` output against the
/// committed baseline under `root`.
pub fn check_hotpath_baseline(root: &Path, current_json: &str) -> Result<BaselineStatus, String> {
    check_graph_audit_baseline(
        &hotpath_baseline_path(root),
        current_json,
        "hot_roots",
        "hot root",
    )
}

/// Compares current `audit-determinism --json` output against the
/// committed baseline under `root`.
pub fn check_det_baseline(root: &Path, current_json: &str) -> Result<BaselineStatus, String> {
    check_graph_audit_baseline(
        &det_baseline_path(root),
        current_json,
        "det_roots",
        "det root",
    )
}

/// Writes `contents` to `path`, creating parent directories.
pub fn refresh(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
    }
    std::fs::write(path, contents).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINT_A: &str = r#"{
  "findings": [{"rule": "l1-no-panic", "file": "a.rs", "line": 3, "message": "m"}],
  "relaxed_sites": [{"file": "b.rs", "line": 9, "reason": "tally"}]
}"#;

    #[test]
    fn identical_lint_docs_are_clean() {
        let dir = std::env::temp_dir().join("spp-baseline-test-clean");
        std::fs::create_dir_all(dir.join("results")).unwrap();
        std::fs::write(dir.join("results/lint_baseline.json"), LINT_A).unwrap();
        assert_eq!(
            check_lint_baseline(&dir, LINT_A).unwrap(),
            BaselineStatus::Clean
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_baseline_skips_comparison() {
        let dir = std::env::temp_dir().join("spp-baseline-test-missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(
            check_lint_baseline(&dir, LINT_A).unwrap(),
            BaselineStatus::Missing
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_and_new_lint_entries_are_reported() {
        let dir = std::env::temp_dir().join("spp-baseline-test-drift");
        std::fs::create_dir_all(dir.join("results")).unwrap();
        std::fs::write(dir.join("results/lint_baseline.json"), LINT_A).unwrap();
        let current = r#"{
  "findings": [],
  "relaxed_sites": [
    {"file": "b.rs", "line": 9, "reason": "tally"},
    {"file": "c.rs", "line": 2, "reason": "fresh"}
  ]
}"#;
        let BaselineStatus::Drift(diffs) = check_lint_baseline(&dir, current).unwrap() else {
            panic!("expected drift");
        };
        assert!(diffs.iter().any(|d| d.contains("stale finding")));
        assert!(diffs.iter().any(|d| d.contains("new relaxed site")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn det_baseline_reads_det_roots_key() {
        let dir = std::env::temp_dir().join("spp-baseline-test-det");
        std::fs::create_dir_all(dir.join("results")).unwrap();
        let base = r#"{
  "det_roots": [{"name": "a.root", "fn": "root", "file": "a.rs", "line": 2, "reachable": 1, "max_depth": 0}],
  "findings": [],
  "escapes": [{"file": "p.rs", "line": 140, "rules": "d3-ambient-read", "reason": "scheduling knob"}],
  "stops": []
}"#;
        std::fs::write(dir.join("results/determinism_baseline.json"), base).unwrap();
        let moved = base.replace("\"line\": 140", "\"line\": 155");
        assert_eq!(
            check_det_baseline(&dir, &moved).unwrap(),
            BaselineStatus::Clean
        );
        let dropped = base.replace(
            r#"{"name": "a.root", "fn": "root", "file": "a.rs", "line": 2, "reachable": 1, "max_depth": 0}"#,
            "",
        );
        let BaselineStatus::Drift(diffs) = check_det_baseline(&dir, &dropped).unwrap() else {
            panic!("expected drift");
        };
        assert!(diffs.iter().any(|d| d.contains("stale det root")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hotpath_compare_ignores_line_numbers() {
        let dir = std::env::temp_dir().join("spp-baseline-test-hot");
        std::fs::create_dir_all(dir.join("results")).unwrap();
        let base = r#"{
  "hot_roots": [{"name": "a.root", "fn": "root", "file": "a.rs", "line": 2, "reachable": 1, "max_depth": 0}],
  "findings": [],
  "escapes": [{"file": "a.rs", "line": 5, "rules": "h1-alloc", "reason": "amortized"}],
  "stops": []
}"#;
        std::fs::write(dir.join("results/hotpath_baseline.json"), base).unwrap();
        let moved = base.replace("\"line\": 5", "\"line\": 50");
        assert_eq!(
            check_hotpath_baseline(&dir, &moved).unwrap(),
            BaselineStatus::Clean
        );
        let dropped = base.replace(
            r#"{"file": "a.rs", "line": 5, "rules": "h1-alloc", "reason": "amortized"}"#,
            "",
        );
        let BaselineStatus::Drift(diffs) = check_hotpath_baseline(&dir, &dropped).unwrap() else {
            panic!("expected drift");
        };
        assert!(diffs.iter().any(|d| d.contains("stale escape")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
