//! A minimal JSON reader for trace validation.
//!
//! The workspace has no serde; `cargo xtask validate-trace` only needs
//! to walk the Chrome `trace_event` structure that
//! `spp_telemetry::export` emits (objects, arrays, strings, numbers,
//! booleans, null), so this hand-rolled recursive-descent parser keeps
//! the validator dependency-free. It is strict about structure but does
//! not validate numeric grammar beyond what `f64::parse` accepts.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap: key order never matters for validation and
    /// deterministic iteration keeps error messages stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object field `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses `src` as one JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{s}` at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs never appear in our exporter's
                        // output (it only \u-escapes control bytes);
                        // map unpaired surrogates to U+FFFD.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // [
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // {
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        out.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn decodes_unicode_escapes() {
        let v = parse("\"ctl \\u0007 byte\"").unwrap();
        assert_eq!(v.as_str(), Some("ctl \u{7} byte"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "[1] garbage", ""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
