//! Text and JSON rendering of lint findings.
//!
//! JSON is hand-rolled (the offline workspace carries no serde); the
//! shape is stable and consumed by `results/lint_baseline.json` diffing
//! in CI:
//!
//! ```json
//! {
//!   "findings": [{"rule": "...", "file": "...", "line": 1, "message": "..."}],
//!   "counts": {"l1-no-panic": 0, ...},
//!   "total": 0,
//!   "files_scanned": 42
//! }
//! ```

use crate::rules::{Finding, RULE_IDS};
use std::collections::BTreeMap;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as human-readable `file:line: [rule] message` lines
/// plus a summary.
pub fn render_text(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    out.push_str(&format!(
        "spp-lint: {} finding(s) in {} file(s) scanned\n",
        findings.len(),
        files_scanned
    ));
    out
}

/// Renders findings as the stable machine-readable JSON document.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut counts: BTreeMap<&str, usize> = RULE_IDS.iter().map(|&r| (r, 0)).collect();
    for f in findings {
        *counts.entry(f.rule.as_str()).or_insert(0) += 1;
    }
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(&f.rule),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message)
            )
        })
        .collect();
    let count_items: Vec<String> = counts
        .iter()
        .map(|(r, n)| format!("    \"{}\": {}", json_escape(r), n))
        .collect();
    format!(
        "{{\n  \"findings\": [\n{}\n  ],\n  \"counts\": {{\n{}\n  }},\n  \"total\": {},\n  \"files_scanned\": {}\n}}\n",
        items.join(",\n"),
        count_items.join(",\n"),
        findings.len(),
        files_scanned
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            path: "crates/core/src/vip.rs".to_string(),
            line: 7,
            rule: "l5-prob-clamp".to_string(),
            message: "needs \"clamp01\"".to_string(),
        }]
    }

    #[test]
    fn text_contains_location_and_summary() {
        let t = render_text(&sample(), 3);
        assert!(t.contains("crates/core/src/vip.rs:7: [l5-prob-clamp]"));
        assert!(t.contains("1 finding(s) in 3 file(s)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = render_json(&sample(), 3);
        assert!(j.contains("\\\"clamp01\\\""));
        assert!(j.contains("\"l5-prob-clamp\": 1"));
        assert!(j.contains("\"l1-no-panic\": 0"));
        assert!(j.contains("\"total\": 1"));
        assert!(j.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn empty_findings_render_cleanly() {
        let j = render_json(&[], 0);
        assert!(j.contains("\"total\": 0"));
    }
}
