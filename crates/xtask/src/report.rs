//! Text and JSON rendering of lint findings.
//!
//! JSON is hand-rolled (the offline workspace carries no serde); the
//! shape is stable and consumed by `results/lint_baseline.json` diffing
//! in CI:
//!
//! ```json
//! {
//!   "findings": [{"rule": "...", "file": "...", "line": 1, "message": "..."}],
//!   "counts": {"l1-no-panic": 0, ...},
//!   "relaxed_sites": [{"file": "...", "line": 1, "reason": "..."}],
//!   "total": 0,
//!   "files_scanned": 42
//! }
//! ```
//!
//! `relaxed_sites` is the L8 inventory: every annotated `*_relaxed(`
//! call site with its justification, so the workspace's entire
//! relaxed-ordering surface is reviewable from one document.

use crate::rules::{Finding, RelaxedSite, RULE_IDS};
use std::collections::BTreeMap;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as human-readable `file:line: [rule] message` lines
/// plus the relaxed-site inventory and a summary.
pub fn render_text(findings: &[Finding], files_scanned: usize, relaxed: &[RelaxedSite]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    for s in relaxed {
        out.push_str(&format!("{}:{}: relaxed({})\n", s.path, s.line, s.reason));
    }
    out.push_str(&format!(
        "spp-lint: {} finding(s), {} annotated relaxed site(s) in {} file(s) scanned\n",
        findings.len(),
        relaxed.len(),
        files_scanned
    ));
    out
}

/// Renders findings as the stable machine-readable JSON document.
pub fn render_json(findings: &[Finding], files_scanned: usize, relaxed: &[RelaxedSite]) -> String {
    let mut counts: BTreeMap<&str, usize> = RULE_IDS.iter().map(|&r| (r, 0)).collect();
    for f in findings {
        *counts.entry(f.rule.as_str()).or_insert(0) += 1;
    }
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(&f.rule),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message)
            )
        })
        .collect();
    let count_items: Vec<String> = counts
        .iter()
        .map(|(r, n)| format!("    \"{}\": {}", json_escape(r), n))
        .collect();
    let relaxed_items: Vec<String> = relaxed
        .iter()
        .map(|s| {
            format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
                json_escape(&s.path),
                s.line,
                json_escape(&s.reason)
            )
        })
        .collect();
    format!(
        "{{\n  \"findings\": [\n{}\n  ],\n  \"counts\": {{\n{}\n  }},\n  \"relaxed_sites\": [\n{}\n  ],\n  \"total\": {},\n  \"files_scanned\": {}\n}}\n",
        items.join(",\n"),
        count_items.join(",\n"),
        relaxed_items.join(",\n"),
        findings.len(),
        files_scanned
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            path: "crates/core/src/vip.rs".to_string(),
            line: 7,
            rule: "l5-prob-clamp".to_string(),
            message: "needs \"clamp01\"".to_string(),
        }]
    }

    fn sample_relaxed() -> Vec<RelaxedSite> {
        vec![RelaxedSite {
            path: "crates/serve/src/overlay.rs".to_string(),
            line: 125,
            reason: "tally; exact via RMW".to_string(),
        }]
    }

    #[test]
    fn text_contains_location_and_summary() {
        let t = render_text(&sample(), 3, &sample_relaxed());
        assert!(t.contains("crates/core/src/vip.rs:7: [l5-prob-clamp]"));
        assert!(t.contains("crates/serve/src/overlay.rs:125: relaxed(tally; exact via RMW)"));
        assert!(t.contains("1 finding(s), 1 annotated relaxed site(s) in 3 file(s)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = render_json(&sample(), 3, &sample_relaxed());
        assert!(j.contains("\\\"clamp01\\\""));
        assert!(j.contains("\"l5-prob-clamp\": 1"));
        assert!(j.contains("\"l1-no-panic\": 0"));
        assert!(j.contains("\"l7-raw-atomics\": 0"));
        assert!(j.contains("\"l8-relaxed-note\": 0"));
        assert!(j.contains("\"reason\": \"tally; exact via RMW\""));
        assert!(j.contains("\"total\": 1"));
        assert!(j.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn empty_findings_render_cleanly() {
        let j = render_json(&[], 0, &[]);
        assert!(j.contains("\"total\": 0"));
    }
}
