//! Rendering and summarization for `cargo xtask audit-hotpaths`.
//!
//! The `--json` document is the committed baseline format
//! (`results/hotpath_baseline.json`): hot-root inventory with
//! reachable-set size and call-graph depth, the escape-site inventory,
//! cold boundaries, findings, and the `unannotated_escapes` counter
//! that benches trend (ISSUE 6). JSON is hand-rolled like
//! [`crate::report`] — the offline workspace carries no serde.

use crate::callgraph::{CallGraph, Reached};
use crate::hotrules::HotReport;
use crate::items::{FileItems, HOT_RULE_IDS};
use std::collections::BTreeMap;

/// One hot root with its reachability summary.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RootSummary {
    /// Declared root name (`// spp-hot(<name>)`).
    pub name: String,
    /// Qualified fn name.
    pub func: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based signature line.
    pub line: usize,
    /// Functions attributed to this root by the multi-source BFS
    /// (first-reacher wins, so overlapping regions count once).
    pub reachable: usize,
    /// Deepest call chain attributed to this root.
    pub max_depth: usize,
}

/// One cold boundary (`// spp-hot: stop(..)`) hit by traversal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StopSite {
    pub path: String,
    pub func: String,
    pub reason: String,
}

/// Everything the audit produces; rendered to text or JSON.
#[derive(Debug)]
pub struct AuditOutput {
    pub roots: Vec<RootSummary>,
    pub stops: Vec<StopSite>,
    pub reachable_functions: usize,
    pub report: HotReport,
    pub files_scanned: usize,
}

/// Summarizes the reachability pass per root. `root_nodes` is the set
/// traversal actually started from (a subset of the declared roots when
/// `--root` filters), so partial views report only what they audited.
pub fn summarize(
    files: &[FileItems],
    graph: &CallGraph,
    root_nodes: &[usize],
    reach: &[Reached],
    files_scanned: usize,
    report: HotReport,
) -> AuditOutput {
    let mut per_root: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for r in reach {
        let e = per_root.entry(r.root.as_str()).or_insert((0, 0));
        e.0 += 1;
        e.1 = e.1.max(r.depth);
    }
    let mut roots = Vec::new();
    for &ri in root_nodes {
        let n = &graph.nodes[ri];
        let name = n.item.hot_root.clone().unwrap_or_default();
        let (reachable, max_depth) = per_root.get(name.as_str()).copied().unwrap_or((0, 0));
        roots.push(RootSummary {
            name,
            func: n.item.qual.clone(),
            path: files[n.file].rel_path.clone(),
            line: n.item.line,
            reachable,
            max_depth,
        });
    }
    roots.sort();
    let mut stops: Vec<StopSite> = reach
        .iter()
        .filter_map(|r| {
            let n = &graph.nodes[r.node];
            n.item.stop.as_ref().map(|reason| StopSite {
                path: files[n.file].rel_path.clone(),
                func: n.item.qual.clone(),
                reason: reason.clone(),
            })
        })
        .collect();
    stops.sort();
    stops.dedup();
    AuditOutput {
        roots,
        stops,
        reachable_functions: reach.len(),
        report,
        files_scanned,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human-readable report.
pub fn render_text(out: &AuditOutput) -> String {
    let mut s = String::new();
    for r in &out.roots {
        s.push_str(&format!(
            "root {} = {} ({}:{}): {} reachable fn(s), max depth {}\n",
            r.name, r.func, r.path, r.line, r.reachable, r.max_depth
        ));
    }
    for f in &out.report.findings {
        let ctx = if f.func.is_empty() {
            String::new()
        } else {
            format!(" in `{}` (via {})", f.func, f.root)
        };
        s.push_str(&format!(
            "{}:{}: [{}]{} {}\n",
            f.path, f.line, f.rule, ctx, f.message
        ));
    }
    for e in &out.report.escapes {
        s.push_str(&format!(
            "{}:{}: escape [{}] {}\n",
            e.path, e.line, e.rules, e.reason
        ));
    }
    for st in &out.stops {
        s.push_str(&format!("stop {} ({}): {}\n", st.func, st.path, st.reason));
    }
    s.push_str(&format!(
        "audit-hotpaths: {} root(s), {} reachable fn(s), {} finding(s), \
         {} escape(s), {} stop(s) in {} file(s) scanned\n",
        out.roots.len(),
        out.reachable_functions,
        out.report.findings.len(),
        out.report.escapes.len(),
        out.stops.len(),
        out.files_scanned
    ));
    s
}

/// Stable machine-readable JSON document (the baseline format).
pub fn render_json(out: &AuditOutput) -> String {
    let root_items: Vec<String> = out
        .roots
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"reachable\": {}, \"max_depth\": {}}}",
                json_escape(&r.name),
                json_escape(&r.func),
                json_escape(&r.path),
                r.line,
                r.reachable,
                r.max_depth
            )
        })
        .collect();
    let mut counts: BTreeMap<&str, usize> = HOT_RULE_IDS.iter().map(|&r| (r, 0)).collect();
    counts.insert("hot-annotation", 0);
    for f in &out.report.findings {
        *counts.entry(f.rule.as_str()).or_insert(0) += 1;
    }
    let finding_items: Vec<String> = out
        .report
        .findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"fn\": \"{}\", \
                 \"root\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&f.rule),
                json_escape(&f.path),
                f.line,
                json_escape(&f.func),
                json_escape(&f.root),
                json_escape(&f.message)
            )
        })
        .collect();
    let count_items: Vec<String> = counts
        .iter()
        .map(|(r, n)| format!("    \"{}\": {}", json_escape(r), n))
        .collect();
    let escape_items: Vec<String> = out
        .report
        .escapes
        .iter()
        .map(|e| {
            format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rules\": \"{}\", \"reason\": \"{}\"}}",
                json_escape(&e.path),
                e.line,
                json_escape(&e.rules),
                json_escape(&e.reason)
            )
        })
        .collect();
    let stop_items: Vec<String> = out
        .stops
        .iter()
        .map(|s| {
            format!(
                "    {{\"file\": \"{}\", \"fn\": \"{}\", \"reason\": \"{}\"}}",
                json_escape(&s.path),
                json_escape(&s.func),
                json_escape(&s.reason)
            )
        })
        .collect();
    format!(
        "{{\n  \"hot_roots\": [\n{}\n  ],\n  \"hot_root_count\": {},\n  \
         \"reachable_functions\": {},\n  \"findings\": [\n{}\n  ],\n  \
         \"counts\": {{\n{}\n  }},\n  \"escapes\": [\n{}\n  ],\n  \
         \"stops\": [\n{}\n  ],\n  \"unannotated_escapes\": {},\n  \
         \"files_scanned\": {}\n}}\n",
        root_items.join(",\n"),
        out.roots.len(),
        out.reachable_functions,
        finding_items.join(",\n"),
        count_items.join(",\n"),
        escape_items.join(",\n"),
        stop_items.join(",\n"),
        out.report.findings.len(),
        out.files_scanned
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotrules::{EscapeSite, HotFinding};

    fn sample() -> AuditOutput {
        AuditOutput {
            roots: vec![RootSummary {
                name: "core.hop_update".to_string(),
                func: "hop_update".to_string(),
                path: "crates/core/src/vip.rs".to_string(),
                line: 7,
                reachable: 3,
                max_depth: 2,
            }],
            stops: vec![StopSite {
                path: "crates/pool/src/lib.rs".to_string(),
                func: "pool_metrics".to_string(),
                reason: "one-time registration".to_string(),
            }],
            reachable_functions: 3,
            report: HotReport {
                findings: vec![HotFinding {
                    path: "crates/a/src/lib.rs".to_string(),
                    line: 4,
                    rule: "h1-alloc".to_string(),
                    func: "deep".to_string(),
                    root: "core.hop_update".to_string(),
                    message: "`.push(` allocates".to_string(),
                }],
                escapes: vec![EscapeSite {
                    path: "crates/b/src/lib.rs".to_string(),
                    line: 9,
                    rules: "h1-alloc".to_string(),
                    reason: "amortized".to_string(),
                }],
            },
            files_scanned: 5,
        }
    }

    #[test]
    fn text_has_roots_findings_and_summary() {
        let t = render_text(&sample());
        assert!(t.contains("root core.hop_update = hop_update"));
        assert!(t.contains("crates/a/src/lib.rs:4: [h1-alloc] in `deep` (via core.hop_update)"));
        assert!(t.contains("escape [h1-alloc] amortized"));
        assert!(t.contains("stop pool_metrics"));
        assert!(t.contains("1 root(s), 3 reachable fn(s), 1 finding(s)"));
    }

    #[test]
    fn json_counts_and_counters() {
        let j = render_json(&sample());
        assert!(j.contains("\"hot_root_count\": 1"));
        assert!(j.contains("\"reachable_functions\": 3"));
        assert!(j.contains("\"h1-alloc\": 1"));
        assert!(j.contains("\"h4-float-order\": 0"));
        assert!(j.contains("\"unannotated_escapes\": 1"));
        assert!(j.contains("\"files_scanned\": 5"));
        assert!(crate::json::parse(&j).is_ok());
    }
}
