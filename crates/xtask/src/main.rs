//! `cargo xtask` — workspace maintenance commands.
//!
//! Currently one subcommand:
//!
//! ```text
//! cargo xtask lint [--json] [--root <dir>]
//! ```
//!
//! runs the SALIENT++ invariant linter (rules L1–L5, see
//! [`rules`] and DESIGN.md § "Correctness gates") over every library
//! source in the workspace and exits nonzero on findings.
//!
//! Scope: `src/**` of every `crates/*` member plus the facade crate's
//! `src/`, excluding binary targets (`**/bin/**`), the dependency shims
//! under `shims/` (they emulate external-crate APIs, panics included),
//! and this xtask itself. Tests, benches, and examples are exempt by
//! construction — the invariants gate *library* hot paths.

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

mod report;
mod rules;
mod scan;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <command>\n\
         commands:\n\
           lint [--json] [--root <dir>]   run the workspace invariant linter"
    );
    ExitCode::from(2)
}

/// Locates the workspace root: `--root` wins, else the xtask manifest's
/// grandparent (crates/xtask -> workspace).
fn workspace_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(r) = explicit {
        return Some(r);
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    Some(manifest.parent()?.parent()?.to_path_buf())
}

/// Recursively collects `.rs` files under `dir` into `out`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative lint targets, deterministically ordered.
fn lint_targets(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for m in members {
            if m.file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            collect_rs(&m.join("src"), &mut files)?;
        }
    }
    files.retain(|p| !p.components().any(|c| c.as_os_str() == "bin"));
    Ok(files)
}

fn run_lint(json: bool, root: Option<PathBuf>) -> ExitCode {
    let Some(root) = workspace_root(root) else {
        eprintln!("spp-lint: cannot determine workspace root");
        return ExitCode::from(2);
    };
    let targets = match lint_targets(&root) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("spp-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &targets {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("spp-lint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scanned += 1;
        findings.extend(rules::check_file(&scan::scan_source(&rel, &src)));
    }
    findings.sort();
    if json {
        print!("{}", report::render_json(&findings, scanned));
    } else {
        print!("{}", report::render_text(&findings, scanned));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "lint" => {
            let mut json = false;
            let mut root = None;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--root" => match it.next() {
                        Some(r) => root = Some(PathBuf::from(r)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            run_lint(json, root)
        }
        _ => usage(),
    }
}
