//! `cargo xtask` — workspace maintenance commands.
//!
//! ```text
//! cargo xtask lint [--json] [--root <dir>] [--refresh-baseline]
//! cargo xtask audit-hotpaths [--json] [--root <name>] [--dir <dir>] [--refresh-baseline]
//! cargo xtask check-interleavings [--module <m>]... [--json] [--max-schedules <n>]
//! cargo xtask validate-trace <file> [--stages]
//! ```
//!
//! `lint` runs the SALIENT++ invariant linter (rules L1–L8, see
//! [`spp_xtask::rules`] and DESIGN.md § "Correctness gates") over every
//! library source in the workspace and exits nonzero on findings or on
//! drift against `results/lint_baseline.json` (stale entries included);
//! `--refresh-baseline` rewrites the snapshot.
//!
//! `audit-hotpaths` runs the transitive hot-path analyzer (rules
//! H1–H4, DESIGN.md §13): it parses fn items and call sites, builds the
//! intra-workspace call graph, and checks every function reachable from
//! a `// spp-hot(<name>)` root for allocation, panic, blocking, and
//! float-ordering hazards. Exits nonzero on findings or on drift
//! against `results/hotpath_baseline.json`. `--root <name>` restricts
//! traversal to one declared root (baseline comparison is skipped for
//! partial views); `--dir <dir>` overrides the workspace root (fixture
//! trees in tests).
//!
//! Scope for both: `src/**` of every `crates/*` member and `shims/*`
//! shim plus the facade crate's `src/`, excluding binary targets
//! (`**/bin/**`) and this xtask itself. Tests, benches, and examples
//! are exempt by construction — the invariants gate *library* hot
//! paths.
//!
//! `check-interleavings` rebuilds `spp-check` with
//! `--cfg spp_model_check` (in its own target dir,
//! `target/model-check`, so the instrumented artifacts never pollute
//! the normal build cache) and runs the concurrency model checker over
//! the workspace harnesses; arguments pass through to the checker.
//!
//! `validate-trace` checks a telemetry trace emitted under `SPP_TRACE=1`
//! — Chrome `trace_event` JSON (`trace_*.json`) or the JSONL event
//! stream (`trace_*.jsonl`) — against the exporter schema; `--stages`
//! additionally requires a span for every Appendix-D pipeline stage
//! (the CI telemetry smoke job passes it).

use spp_xtask::baseline::{self, BaselineStatus};
use spp_xtask::callgraph::CallGraph;
use spp_xtask::items::FileItems;
use spp_xtask::scan::SourceFile;
use spp_xtask::{hotreport, hotrules, items, json, report, rules, scan, walk};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <command>\n\
         commands:\n\
           lint [--json] [--root <dir>] [--refresh-baseline]\n\
                                               run the workspace invariant linter and\n\
                                               diff results/lint_baseline.json\n\
           audit-hotpaths [--json] [--root <name>] [--dir <dir>] [--refresh-baseline]\n\
                                               run the transitive hot-path analyzer\n\
                                               (H1-H4) from declared spp-hot roots and\n\
                                               diff results/hotpath_baseline.json\n\
           check-interleavings [args..]        build spp-check with --cfg spp_model_check\n\
                                               and explore the concurrency harnesses\n\
                                               (args pass through: --module <m>, --json,\n\
                                               --max-schedules <n>, --list)\n\
           validate-trace <file> [--stages]    check an SPP_TRACE output file against\n\
                                               the exporter schema (--stages: require\n\
                                               every Appendix-D pipeline stage)"
    );
    ExitCode::from(2)
}

/// Reports baseline drift to stderr; returns true when the run must
/// fail.
fn report_drift(gate: &str, status: BaselineStatus, refresh_hint: &str) -> bool {
    match status {
        BaselineStatus::Missing | BaselineStatus::Clean => false,
        BaselineStatus::Drift(diffs) => {
            for d in &diffs {
                eprintln!("{gate}: baseline drift: {d}");
            }
            eprintln!(
                "{gate}: baseline out of date ({} difference(s)); review and run \
                 `cargo xtask {refresh_hint}` to refresh",
                diffs.len()
            );
            true
        }
    }
}

fn run_lint(json_out: bool, root: Option<PathBuf>, refresh: bool) -> ExitCode {
    let Some(root) = walk::workspace_root(root) else {
        eprintln!("spp-lint: cannot determine workspace root");
        return ExitCode::from(2);
    };
    let sources = match walk::read_targets(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("spp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut findings = Vec::new();
    let mut relaxed = Vec::new();
    let scanned = sources.len();
    for (rel, src) in &sources {
        let file = scan::scan_source(rel, src);
        findings.extend(rules::check_file(&file));
        relaxed.extend(rules::relaxed_sites(&file));
    }
    findings.sort();
    relaxed.sort();
    let rendered_json = report::render_json(&findings, scanned, &relaxed);
    if json_out {
        print!("{rendered_json}");
    } else {
        print!("{}", report::render_text(&findings, scanned, &relaxed));
    }
    if refresh {
        if let Err(e) = baseline::refresh(&baseline::lint_baseline_path(&root), &rendered_json) {
            eprintln!("spp-lint: refreshing baseline: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "spp-lint: baseline refreshed at {}",
            baseline::lint_baseline_path(&root).display()
        );
    }
    let drift = if refresh {
        false
    } else {
        match baseline::check_lint_baseline(&root, &rendered_json) {
            Ok(status) => report_drift("spp-lint", status, "lint --refresh-baseline"),
            Err(e) => {
                eprintln!("spp-lint: baseline check: {e}");
                return ExitCode::from(2);
            }
        }
    };
    if findings.is_empty() && !drift {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Scans and parses the whole workspace for the hot-path analyzer.
fn parse_workspace(root: &Path) -> Result<(Vec<SourceFile>, Vec<FileItems>), String> {
    let sources = walk::read_targets(root)?;
    let mut scanned = Vec::with_capacity(sources.len());
    let mut parsed = Vec::with_capacity(sources.len());
    for (rel, src) in &sources {
        let sf = scan::scan_source(rel, src);
        parsed.push(items::parse_items(&sf, src));
        scanned.push(sf);
    }
    Ok((scanned, parsed))
}

fn run_audit_hotpaths(
    json_out: bool,
    root_filter: Option<String>,
    dir: Option<PathBuf>,
    refresh: bool,
) -> ExitCode {
    let Some(root) = walk::workspace_root(dir) else {
        eprintln!("audit-hotpaths: cannot determine workspace root");
        return ExitCode::from(2);
    };
    let (scanned, parsed) = match parse_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("audit-hotpaths: {e}");
            return ExitCode::from(2);
        }
    };
    let graph = CallGraph::build(&parsed);
    let mut roots = graph.roots();
    if let Some(name) = &root_filter {
        roots.retain(|&i| graph.nodes[i].item.hot_root.as_deref() == Some(name.as_str()));
        if roots.is_empty() {
            eprintln!("audit-hotpaths: no hot root named `{name}`; declared roots:");
            for i in graph.roots() {
                if let Some(n) = &graph.nodes[i].item.hot_root {
                    eprintln!("  {n}");
                }
            }
            return ExitCode::from(2);
        }
    }
    let reach = graph.reach(&roots);
    let rep = hotrules::check_reachable(&parsed, &scanned, &graph, &reach);
    let out = hotreport::summarize(&parsed, &graph, &roots, &reach, scanned.len(), rep);
    let rendered_json = hotreport::render_json(&out);
    if json_out {
        print!("{rendered_json}");
    } else {
        print!("{}", hotreport::render_text(&out));
    }
    let clean = out.report.findings.is_empty();
    // Partial traversals (--root) see a subset of escapes/roots, so the
    // full-workspace baseline does not apply.
    let drift = if root_filter.is_some() {
        false
    } else if refresh {
        if let Err(e) = baseline::refresh(&baseline::hotpath_baseline_path(&root), &rendered_json) {
            eprintln!("audit-hotpaths: refreshing baseline: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "audit-hotpaths: baseline refreshed at {}",
            baseline::hotpath_baseline_path(&root).display()
        );
        false
    } else {
        match baseline::check_hotpath_baseline(&root, &rendered_json) {
            Ok(status) => report_drift(
                "audit-hotpaths",
                status,
                "audit-hotpaths --refresh-baseline",
            ),
            Err(e) => {
                eprintln!("audit-hotpaths: baseline check: {e}");
                return ExitCode::from(2);
            }
        }
    };
    if clean && !drift {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Builds `spp-check` with `--cfg spp_model_check` and runs it,
/// forwarding `args` (e.g. `--module`, `--json`, `--max-schedules`).
///
/// The instrumented build gets its own target dir (`target/model-check`)
/// so flipping the cfg never invalidates the normal build cache, and
/// `RUSTFLAGS` is extended rather than replaced so caller-provided
/// flags survive.
fn run_check_interleavings(args: &[String]) -> ExitCode {
    let Some(root) = walk::workspace_root(None) else {
        eprintln!("check-interleavings: cannot determine workspace root");
        return ExitCode::from(2);
    };
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("spp_model_check") {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg spp_model_check");
    }
    let status = std::process::Command::new(cargo)
        .current_dir(&root)
        .env("RUSTFLAGS", rustflags)
        .env("CARGO_TARGET_DIR", root.join("target/model-check"))
        .args(["run", "--release", "-p", "spp-check", "--"])
        .args(args)
        .status();
    match status {
        Ok(s) => match s.code() {
            Some(c) => ExitCode::from(c.clamp(0, 255) as u8),
            None => {
                eprintln!("check-interleavings: spp-check terminated by signal");
                ExitCode::from(2)
            }
        },
        Err(e) => {
            eprintln!("check-interleavings: spawning cargo: {e}");
            ExitCode::from(2)
        }
    }
}

/// Validates one Chrome `trace_event` document. Returns the set of
/// complete-event ("X") names seen.
fn check_chrome_trace(doc: &json::Json) -> Result<Vec<String>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(json::Json::as_arr)
        .ok_or("top-level object must have a `traceEvents` array")?;
    if events.is_empty() {
        return Err("traceEvents is empty — was the recorder enabled?".to_string());
    }
    let mut names = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string `ph`"))?;
        let name = e
            .get("name")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string `name`"))?;
        e.get("pid")
            .and_then(json::Json::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric `pid`"))?;
        match ph {
            "X" => {
                // Metadata events (process_name) may omit `tid`; real
                // spans must carry one.
                for key in ["tid", "ts", "dur"] {
                    let v = e
                        .get(key)
                        .and_then(json::Json::as_num)
                        .ok_or_else(|| format!("event {i} ({name}): missing numeric `{key}`"))?;
                    if v < 0.0 {
                        return Err(format!("event {i} ({name}): negative `{key}`"));
                    }
                }
                names.push(name.to_string());
            }
            "M" => {}
            other => return Err(format!("event {i} ({name}): unknown phase `{other}`")),
        }
    }
    Ok(names)
}

/// Validates a JSONL event stream (one object per line). Returns the
/// event names seen.
fn check_jsonl_trace(src: &str) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let name = v
            .get("name")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("line {}: missing string `name`", lineno + 1))?;
        for key in ["tid", "start_ns", "dur_ns", "depth"] {
            v.get(key)
                .and_then(json::Json::as_num)
                .ok_or_else(|| format!("line {}: missing numeric `{key}`", lineno + 1))?;
        }
        if v.get("sim").is_none() {
            return Err(format!("line {}: missing `sim` flag", lineno + 1));
        }
        names.push(name.to_string());
    }
    if names.is_empty() {
        return Err("no events — was the recorder enabled?".to_string());
    }
    Ok(names)
}

fn run_validate_trace(path: &Path, require_stages: bool) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("validate-trace: reading {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let jsonl = path.extension().is_some_and(|e| e == "jsonl");
    let names = if jsonl {
        check_jsonl_trace(&src)
    } else {
        json::parse(&src)
            .map_err(|e| format!("not valid JSON: {e}"))
            .and_then(|doc| check_chrome_trace(&doc))
    };
    let names = match names {
        Ok(n) => n,
        Err(e) => {
            eprintln!("validate-trace: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if require_stages {
        let missing: Vec<&str> = spp_telemetry::stage::PipelineStage::ALL
            .iter()
            .map(|s| s.short())
            .filter(|s| !names.iter().any(|n| n == s))
            .collect();
        if !missing.is_empty() {
            eprintln!(
                "validate-trace: {}: missing pipeline stage spans: {}",
                path.display(),
                missing.join(", ")
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "validate-trace: {}: ok ({} events{})",
        path.display(),
        names.len(),
        if require_stages {
            ", all pipeline stages present"
        } else {
            ""
        }
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "lint" => {
            let mut json = false;
            let mut root = None;
            let mut refresh = false;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--refresh-baseline" => refresh = true,
                    "--root" => match it.next() {
                        Some(r) => root = Some(PathBuf::from(r)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            run_lint(json, root, refresh)
        }
        "audit-hotpaths" => {
            let mut json = false;
            let mut root_filter = None;
            let mut dir = None;
            let mut refresh = false;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--refresh-baseline" => refresh = true,
                    "--root" => match it.next() {
                        Some(r) => root_filter = Some(r.clone()),
                        None => return usage(),
                    },
                    "--dir" => match it.next() {
                        Some(d) => dir = Some(PathBuf::from(d)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            run_audit_hotpaths(json, root_filter, dir, refresh)
        }
        "check-interleavings" => run_check_interleavings(&args[1..]),
        "validate-trace" => {
            let mut file = None;
            let mut stages = false;
            for a in args.iter().skip(1) {
                match a.as_str() {
                    "--stages" => stages = true,
                    _ if file.is_none() && !a.starts_with('-') => file = Some(PathBuf::from(a)),
                    _ => return usage(),
                }
            }
            let Some(file) = file else { return usage() };
            run_validate_trace(&file, stages)
        }
        _ => usage(),
    }
}
