//! `cargo xtask` — workspace maintenance commands.
//!
//! ```text
//! cargo xtask lint [--json] [--root <dir>]
//! cargo xtask check-interleavings [--module <m>]... [--json] [--max-schedules <n>]
//! cargo xtask validate-trace <file> [--stages]
//! ```
//!
//! `lint` runs the SALIENT++ invariant linter (rules L1–L8, see
//! [`rules`] and DESIGN.md § "Correctness gates") over every library
//! source in the workspace and exits nonzero on findings.
//!
//! Scope: `src/**` of every `crates/*` member and `shims/*` shim plus
//! the facade crate's `src/`, excluding binary targets (`**/bin/**`)
//! and this xtask itself. Shim-specific deviations (emulated panics,
//! the criterion timing loop) are justified in place with `spp-lint`
//! pragmas. Tests, benches, and examples are exempt by construction —
//! the invariants gate *library* hot paths.
//!
//! `check-interleavings` rebuilds `spp-check` with
//! `--cfg spp_model_check` (in its own target dir,
//! `target/model-check`, so the instrumented artifacts never pollute
//! the normal build cache) and runs the concurrency model checker over
//! the workspace harnesses; arguments pass through to the checker.
//!
//! `validate-trace` checks a telemetry trace emitted under `SPP_TRACE=1`
//! — Chrome `trace_event` JSON (`trace_*.json`) or the JSONL event
//! stream (`trace_*.jsonl`) — against the exporter schema; `--stages`
//! additionally requires a span for every Appendix-D pipeline stage
//! (the CI telemetry smoke job passes it).

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

mod json;
mod report;
mod rules;
mod scan;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <command>\n\
         commands:\n\
           lint [--json] [--root <dir>]        run the workspace invariant linter\n\
           check-interleavings [args..]        build spp-check with --cfg spp_model_check\n\
                                               and explore the concurrency harnesses\n\
                                               (args pass through: --module <m>, --json,\n\
                                               --max-schedules <n>, --list)\n\
           validate-trace <file> [--stages]    check an SPP_TRACE output file against\n\
                                               the exporter schema (--stages: require\n\
                                               every Appendix-D pipeline stage)"
    );
    ExitCode::from(2)
}

/// Locates the workspace root: `--root` wins, else the xtask manifest's
/// grandparent (crates/xtask -> workspace).
fn workspace_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(r) = explicit {
        return Some(r);
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    Some(manifest.parent()?.parent()?.to_path_buf())
}

/// Recursively collects `.rs` files under `dir` into `out`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative lint targets, deterministically ordered.
fn lint_targets(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        if !dir.is_dir() {
            continue;
        }
        let mut members: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for m in members {
            if m.file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            collect_rs(&m.join("src"), &mut files)?;
        }
    }
    files.retain(|p| !p.components().any(|c| c.as_os_str() == "bin"));
    Ok(files)
}

fn run_lint(json: bool, root: Option<PathBuf>) -> ExitCode {
    let Some(root) = workspace_root(root) else {
        eprintln!("spp-lint: cannot determine workspace root");
        return ExitCode::from(2);
    };
    let targets = match lint_targets(&root) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("spp-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut findings = Vec::new();
    let mut relaxed = Vec::new();
    let mut scanned = 0usize;
    for path in &targets {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("spp-lint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scanned += 1;
        let file = scan::scan_source(&rel, &src);
        findings.extend(rules::check_file(&file));
        relaxed.extend(rules::relaxed_sites(&file));
    }
    findings.sort();
    relaxed.sort();
    if json {
        print!("{}", report::render_json(&findings, scanned, &relaxed));
    } else {
        print!("{}", report::render_text(&findings, scanned, &relaxed));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Builds `spp-check` with `--cfg spp_model_check` and runs it,
/// forwarding `args` (e.g. `--module`, `--json`, `--max-schedules`).
///
/// The instrumented build gets its own target dir (`target/model-check`)
/// so flipping the cfg never invalidates the normal build cache, and
/// `RUSTFLAGS` is extended rather than replaced so caller-provided
/// flags survive.
fn run_check_interleavings(args: &[String]) -> ExitCode {
    let Some(root) = workspace_root(None) else {
        eprintln!("check-interleavings: cannot determine workspace root");
        return ExitCode::from(2);
    };
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("spp_model_check") {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg spp_model_check");
    }
    let status = std::process::Command::new(cargo)
        .current_dir(&root)
        .env("RUSTFLAGS", rustflags)
        .env("CARGO_TARGET_DIR", root.join("target/model-check"))
        .args(["run", "--release", "-p", "spp-check", "--"])
        .args(args)
        .status();
    match status {
        Ok(s) => match s.code() {
            Some(c) => ExitCode::from(c.clamp(0, 255) as u8),
            None => {
                eprintln!("check-interleavings: spp-check terminated by signal");
                ExitCode::from(2)
            }
        },
        Err(e) => {
            eprintln!("check-interleavings: spawning cargo: {e}");
            ExitCode::from(2)
        }
    }
}

/// Validates one Chrome `trace_event` document. Returns the set of
/// complete-event ("X") names seen.
fn check_chrome_trace(doc: &json::Json) -> Result<Vec<String>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(json::Json::as_arr)
        .ok_or("top-level object must have a `traceEvents` array")?;
    if events.is_empty() {
        return Err("traceEvents is empty — was the recorder enabled?".to_string());
    }
    let mut names = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string `ph`"))?;
        let name = e
            .get("name")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string `name`"))?;
        e.get("pid")
            .and_then(json::Json::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric `pid`"))?;
        match ph {
            "X" => {
                // Metadata events (process_name) may omit `tid`; real
                // spans must carry one.
                for key in ["tid", "ts", "dur"] {
                    let v = e
                        .get(key)
                        .and_then(json::Json::as_num)
                        .ok_or_else(|| format!("event {i} ({name}): missing numeric `{key}`"))?;
                    if v < 0.0 {
                        return Err(format!("event {i} ({name}): negative `{key}`"));
                    }
                }
                names.push(name.to_string());
            }
            "M" => {}
            other => return Err(format!("event {i} ({name}): unknown phase `{other}`")),
        }
    }
    Ok(names)
}

/// Validates a JSONL event stream (one object per line). Returns the
/// event names seen.
fn check_jsonl_trace(src: &str) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let name = v
            .get("name")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("line {}: missing string `name`", lineno + 1))?;
        for key in ["tid", "start_ns", "dur_ns", "depth"] {
            v.get(key)
                .and_then(json::Json::as_num)
                .ok_or_else(|| format!("line {}: missing numeric `{key}`", lineno + 1))?;
        }
        if v.get("sim").is_none() {
            return Err(format!("line {}: missing `sim` flag", lineno + 1));
        }
        names.push(name.to_string());
    }
    if names.is_empty() {
        return Err("no events — was the recorder enabled?".to_string());
    }
    Ok(names)
}

fn run_validate_trace(path: &Path, require_stages: bool) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("validate-trace: reading {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let jsonl = path.extension().is_some_and(|e| e == "jsonl");
    let names = if jsonl {
        check_jsonl_trace(&src)
    } else {
        json::parse(&src)
            .map_err(|e| format!("not valid JSON: {e}"))
            .and_then(|doc| check_chrome_trace(&doc))
    };
    let names = match names {
        Ok(n) => n,
        Err(e) => {
            eprintln!("validate-trace: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if require_stages {
        let missing: Vec<&str> = spp_telemetry::stage::PipelineStage::ALL
            .iter()
            .map(|s| s.short())
            .filter(|s| !names.iter().any(|n| n == s))
            .collect();
        if !missing.is_empty() {
            eprintln!(
                "validate-trace: {}: missing pipeline stage spans: {}",
                path.display(),
                missing.join(", ")
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "validate-trace: {}: ok ({} events{})",
        path.display(),
        names.len(),
        if require_stages {
            ", all pipeline stages present"
        } else {
            ""
        }
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "lint" => {
            let mut json = false;
            let mut root = None;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--root" => match it.next() {
                        Some(r) => root = Some(PathBuf::from(r)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            run_lint(json, root)
        }
        "check-interleavings" => run_check_interleavings(&args[1..]),
        "validate-trace" => {
            let mut file = None;
            let mut stages = false;
            for a in args.iter().skip(1) {
                match a.as_str() {
                    "--stages" => stages = true,
                    _ if file.is_none() && !a.starts_with('-') => file = Some(PathBuf::from(a)),
                    _ => return usage(),
                }
            }
            let Some(file) = file else { return usage() };
            run_validate_trace(&file, stages)
        }
        _ => usage(),
    }
}
