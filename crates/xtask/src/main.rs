//! `cargo xtask` — workspace maintenance commands.
//!
//! ```text
//! cargo xtask lint [--json] [--root <dir>] [--refresh-baseline]
//! cargo xtask audit-hotpaths [--json] [--root <name>] [--dir <dir>] [--refresh-baseline]
//! cargo xtask audit-determinism [--json] [--root <name>] [--dir <dir>] [--refresh-baseline]
//! cargo xtask check-interleavings [--module <m>]... [--json] [--max-schedules <n>]
//! cargo xtask validate-trace <file> [--stages]
//! ```
//!
//! `lint` runs the SALIENT++ invariant linter (rules L1–L8, see
//! [`spp_xtask::rules`] and DESIGN.md § "Correctness gates") over every
//! library source in the workspace and exits nonzero on findings or on
//! drift against `results/lint_baseline.json` (stale entries included);
//! `--refresh-baseline` rewrites the snapshot.
//!
//! `audit-hotpaths` runs the transitive hot-path analyzer (rules
//! H1–H4, DESIGN.md §13): it parses fn items and call sites, builds the
//! intra-workspace call graph, and checks every function reachable from
//! a `// spp-hot(<name>)` root for allocation, panic, blocking, and
//! float-ordering hazards. Exits nonzero on findings or on drift
//! against `results/hotpath_baseline.json`. `--root <name>` restricts
//! traversal to one declared root (baseline comparison is skipped for
//! partial views); `--dir <dir>` overrides the workspace root (fixture
//! trees in tests).
//!
//! `audit-determinism` runs the transitive determinism analyzer (rules
//! D1–D5, DESIGN.md §17) over the same call graph from
//! `// spp-det(<name>)` roots: every reachable function is checked for
//! the source constructs that break the §9 bit-identity contract —
//! unordered hash iteration, unseeded RNG, ambient reads, worker-count
//! or thread-identity leaks, and order-sensitive float reductions.
//! Exits nonzero on findings or on drift against
//! `results/determinism_baseline.json`; `--root` / `--dir` /
//! `--refresh-baseline` behave as for `audit-hotpaths`.
//!
//! Scope for all three: `src/**` of every `crates/*` member and
//! `shims/*` shim plus the facade crate's `src/`, excluding binary
//! targets (`**/bin/**`) and this xtask itself. Tests, benches, and
//! examples are exempt by construction — the invariants gate *library*
//! hot paths.
//!
//! `check-interleavings` rebuilds `spp-check` with
//! `--cfg spp_model_check` (in its own target dir,
//! `target/model-check`, so the instrumented artifacts never pollute
//! the normal build cache) and runs the concurrency model checker over
//! the workspace harnesses; arguments pass through to the checker.
//!
//! `validate-trace` checks a telemetry trace emitted under `SPP_TRACE=1`
//! — Chrome `trace_event` JSON (`trace_*.json`) or the JSONL event
//! stream (`trace_*.jsonl`) — against the exporter schema; `--stages`
//! additionally requires a span for every Appendix-D pipeline stage
//! (the CI telemetry smoke job passes it).

use spp_xtask::baseline::{self, BaselineStatus};
use spp_xtask::callgraph::CallGraph;
use spp_xtask::items::{AuditKind, FileItems};
use spp_xtask::scan::SourceFile;
use spp_xtask::{
    benchdiff, detreport, detrules, hotreport, hotrules, items, json, report, rules, scan, walk,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <command>\n\
         commands:\n\
           lint [--json] [--root <dir>] [--refresh-baseline]\n\
                                               run the workspace invariant linter and\n\
                                               diff results/lint_baseline.json\n\
           audit-hotpaths [--json] [--root <name>] [--dir <dir>] [--refresh-baseline]\n\
                                               run the transitive hot-path analyzer\n\
                                               (H1-H4) from declared spp-hot roots and\n\
                                               diff results/hotpath_baseline.json\n\
           audit-determinism [--json] [--root <name>] [--dir <dir>] [--refresh-baseline]\n\
                                               run the transitive determinism analyzer\n\
                                               (D1-D5) from declared spp-det roots and\n\
                                               diff results/determinism_baseline.json\n\
           check-interleavings [args..]        build spp-check with --cfg spp_model_check\n\
                                               and explore the concurrency harnesses\n\
                                               (args pass through: --module <m>, --json,\n\
                                               --max-schedules <n>, --list)\n\
           validate-trace <file> [--stages] [--attrib]\n\
                                               check an SPP_TRACE output file against\n\
                                               the exporter schema (--stages: require\n\
                                               every Appendix-D pipeline stage;\n\
                                               --attrib: require cache/comm attribution\n\
                                               sections; present ones are always checked)\n\
           bench-diff <old> <new> [--json]     compare bench reports (files, dirs of\n\
                                               BENCH_*.json, or baseline bundles) under\n\
                                               noise-aware per-metric thresholds; exits\n\
                                               nonzero on regression\n\
           bench-diff --snapshot <dir> <out>   bundle a directory of BENCH_*.json into\n\
                                               a baseline file (results/bench_baseline.json)"
    );
    ExitCode::from(2)
}

/// Reports baseline drift to stderr; returns true when the run must
/// fail.
fn report_drift(gate: &str, status: BaselineStatus, refresh_hint: &str) -> bool {
    match status {
        BaselineStatus::Missing | BaselineStatus::Clean => false,
        BaselineStatus::Drift(diffs) => {
            for d in &diffs {
                eprintln!("{gate}: baseline drift: {d}");
            }
            eprintln!(
                "{gate}: baseline out of date ({} difference(s)); review and run \
                 `cargo xtask {refresh_hint}` to refresh",
                diffs.len()
            );
            true
        }
    }
}

fn run_lint(json_out: bool, root: Option<PathBuf>, refresh: bool) -> ExitCode {
    let Some(root) = walk::workspace_root(root) else {
        eprintln!("spp-lint: cannot determine workspace root");
        return ExitCode::from(2);
    };
    let sources = match walk::read_targets(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("spp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut findings = Vec::new();
    let mut relaxed = Vec::new();
    let scanned = sources.len();
    for (rel, src) in &sources {
        let file = scan::scan_source(rel, src);
        findings.extend(rules::check_file(&file));
        relaxed.extend(rules::relaxed_sites(&file));
    }
    findings.sort();
    relaxed.sort();
    let rendered_json = report::render_json(&findings, scanned, &relaxed);
    if json_out {
        print!("{rendered_json}");
    } else {
        print!("{}", report::render_text(&findings, scanned, &relaxed));
    }
    if refresh {
        if let Err(e) = baseline::refresh(&baseline::lint_baseline_path(&root), &rendered_json) {
            eprintln!("spp-lint: refreshing baseline: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "spp-lint: baseline refreshed at {}",
            baseline::lint_baseline_path(&root).display()
        );
    }
    let drift = if refresh {
        false
    } else {
        match baseline::check_lint_baseline(&root, &rendered_json) {
            Ok(status) => report_drift("spp-lint", status, "lint --refresh-baseline"),
            Err(e) => {
                eprintln!("spp-lint: baseline check: {e}");
                return ExitCode::from(2);
            }
        }
    };
    if findings.is_empty() && !drift {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Scans and parses the whole workspace for the hot-path analyzer.
fn parse_workspace(root: &Path) -> Result<(Vec<SourceFile>, Vec<FileItems>), String> {
    let sources = walk::read_targets(root)?;
    let mut scanned = Vec::with_capacity(sources.len());
    let mut parsed = Vec::with_capacity(sources.len());
    for (rel, src) in &sources {
        let sf = scan::scan_source(rel, src);
        parsed.push(items::parse_items(&sf, src));
        scanned.push(sf);
    }
    Ok((scanned, parsed))
}

fn run_audit_hotpaths(
    json_out: bool,
    root_filter: Option<String>,
    dir: Option<PathBuf>,
    refresh: bool,
) -> ExitCode {
    let Some(root) = walk::workspace_root(dir) else {
        eprintln!("audit-hotpaths: cannot determine workspace root");
        return ExitCode::from(2);
    };
    let (scanned, parsed) = match parse_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("audit-hotpaths: {e}");
            return ExitCode::from(2);
        }
    };
    let graph = CallGraph::build(&parsed);
    let mut roots = graph.roots();
    if let Some(name) = &root_filter {
        roots.retain(|&i| graph.nodes[i].item.hot_root.as_deref() == Some(name.as_str()));
        if roots.is_empty() {
            eprintln!("audit-hotpaths: no hot root named `{name}`; declared roots:");
            for i in graph.roots() {
                if let Some(n) = &graph.nodes[i].item.hot_root {
                    eprintln!("  {n}");
                }
            }
            return ExitCode::from(2);
        }
    }
    let reach = graph.reach(&roots);
    let rep = hotrules::check_reachable(&parsed, &scanned, &graph, &reach);
    let out = hotreport::summarize(&parsed, &graph, &roots, &reach, scanned.len(), rep);
    let rendered_json = hotreport::render_json(&out);
    if json_out {
        print!("{rendered_json}");
    } else {
        print!("{}", hotreport::render_text(&out));
    }
    let clean = out.report.findings.is_empty();
    // Partial traversals (--root) see a subset of escapes/roots, so the
    // full-workspace baseline does not apply.
    let drift = if root_filter.is_some() {
        false
    } else if refresh {
        if let Err(e) = baseline::refresh(&baseline::hotpath_baseline_path(&root), &rendered_json) {
            eprintln!("audit-hotpaths: refreshing baseline: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "audit-hotpaths: baseline refreshed at {}",
            baseline::hotpath_baseline_path(&root).display()
        );
        false
    } else {
        match baseline::check_hotpath_baseline(&root, &rendered_json) {
            Ok(status) => report_drift(
                "audit-hotpaths",
                status,
                "audit-hotpaths --refresh-baseline",
            ),
            Err(e) => {
                eprintln!("audit-hotpaths: baseline check: {e}");
                return ExitCode::from(2);
            }
        }
    };
    if clean && !drift {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_audit_determinism(
    json_out: bool,
    root_filter: Option<String>,
    dir: Option<PathBuf>,
    refresh: bool,
) -> ExitCode {
    let Some(root) = walk::workspace_root(dir) else {
        eprintln!("audit-determinism: cannot determine workspace root");
        return ExitCode::from(2);
    };
    let (scanned, parsed) = match parse_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("audit-determinism: {e}");
            return ExitCode::from(2);
        }
    };
    let graph = CallGraph::build(&parsed);
    let mut roots = graph.roots_for(AuditKind::Det);
    if let Some(name) = &root_filter {
        roots.retain(|&i| graph.nodes[i].item.det_root.as_deref() == Some(name.as_str()));
        if roots.is_empty() {
            eprintln!("audit-determinism: no det root named `{name}`; declared roots:");
            for i in graph.roots_for(AuditKind::Det) {
                if let Some(n) = &graph.nodes[i].item.det_root {
                    eprintln!("  {n}");
                }
            }
            return ExitCode::from(2);
        }
    }
    let reach = graph.reach_for(&roots, AuditKind::Det);
    let rep = detrules::check_reachable(&parsed, &scanned, &graph, &reach);
    let out = detreport::summarize(&parsed, &graph, &roots, &reach, scanned.len(), rep);
    let rendered_json = detreport::render_json(&out);
    if json_out {
        print!("{rendered_json}");
    } else {
        print!("{}", detreport::render_text(&out));
    }
    let clean = out.report.findings.is_empty();
    // Partial traversals (--root) see a subset of escapes/roots, so the
    // full-workspace baseline does not apply.
    let drift = if root_filter.is_some() {
        false
    } else if refresh {
        if let Err(e) = baseline::refresh(&baseline::det_baseline_path(&root), &rendered_json) {
            eprintln!("audit-determinism: refreshing baseline: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "audit-determinism: baseline refreshed at {}",
            baseline::det_baseline_path(&root).display()
        );
        false
    } else {
        match baseline::check_det_baseline(&root, &rendered_json) {
            Ok(status) => report_drift(
                "audit-determinism",
                status,
                "audit-determinism --refresh-baseline",
            ),
            Err(e) => {
                eprintln!("audit-determinism: baseline check: {e}");
                return ExitCode::from(2);
            }
        }
    };
    if clean && !drift {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Builds `spp-check` with `--cfg spp_model_check` and runs it,
/// forwarding `args` (e.g. `--module`, `--json`, `--max-schedules`).
///
/// The instrumented build gets its own target dir (`target/model-check`)
/// so flipping the cfg never invalidates the normal build cache, and
/// `RUSTFLAGS` is extended rather than replaced so caller-provided
/// flags survive.
fn run_check_interleavings(args: &[String]) -> ExitCode {
    let Some(root) = walk::workspace_root(None) else {
        eprintln!("check-interleavings: cannot determine workspace root");
        return ExitCode::from(2);
    };
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("spp_model_check") {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg spp_model_check");
    }
    let status = std::process::Command::new(cargo)
        .current_dir(&root)
        .env("RUSTFLAGS", rustflags)
        .env("CARGO_TARGET_DIR", root.join("target/model-check"))
        .args(["run", "--release", "-p", "spp-check", "--"])
        .args(args)
        .status();
    match status {
        Ok(s) => match s.code() {
            Some(c) => ExitCode::from(c.clamp(0, 255) as u8),
            None => {
                eprintln!("check-interleavings: spp-check terminated by signal");
                ExitCode::from(2)
            }
        },
        Err(e) => {
            eprintln!("check-interleavings: spawning cargo: {e}");
            ExitCode::from(2)
        }
    }
}

/// Validates one Chrome `trace_event` document. Returns the set of
/// complete-event ("X") names seen.
fn check_chrome_trace(doc: &json::Json) -> Result<Vec<String>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(json::Json::as_arr)
        .ok_or("top-level object must have a `traceEvents` array")?;
    if events.is_empty() {
        return Err("traceEvents is empty — was the recorder enabled?".to_string());
    }
    let mut names = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string `ph`"))?;
        let name = e
            .get("name")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string `name`"))?;
        e.get("pid")
            .and_then(json::Json::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric `pid`"))?;
        match ph {
            "X" => {
                // Metadata events (process_name) may omit `tid`; real
                // spans must carry one.
                for key in ["tid", "ts", "dur"] {
                    let v = e
                        .get(key)
                        .and_then(json::Json::as_num)
                        .ok_or_else(|| format!("event {i} ({name}): missing numeric `{key}`"))?;
                    if v < 0.0 {
                        return Err(format!("event {i} ({name}): negative `{key}`"));
                    }
                }
                names.push(name.to_string());
            }
            "M" => {}
            other => return Err(format!("event {i} ({name}): unknown phase `{other}`")),
        }
    }
    Ok(names)
}

/// Validates a JSONL event stream (one object per line). Returns the
/// event names seen.
fn check_jsonl_trace(src: &str) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let name = v
            .get("name")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("line {}: missing string `name`", lineno + 1))?;
        for key in ["tid", "start_ns", "dur_ns", "depth"] {
            v.get(key)
                .and_then(json::Json::as_num)
                .ok_or_else(|| format!("line {}: missing numeric `{key}`", lineno + 1))?;
        }
        if v.get("sim").is_none() {
            return Err(format!("line {}: missing `sim` flag", lineno + 1));
        }
        names.push(name.to_string());
    }
    if names.is_empty() {
        return Err("no events — was the recorder enabled?".to_string());
    }
    Ok(names)
}

/// Validates one `CacheReport` object of the trace's attribution
/// section: tier counters present, tier hits partitioning `lookups`,
/// and the latency sketch's bucket counts consistent with its total.
fn check_cache_report(i: usize, c: &json::Json) -> Result<(), String> {
    let label = c.get("label").and_then(json::Json::as_str).unwrap_or("?");
    let ctx = |msg: &str| format!("attrib.cache[{i}] ({label}): {msg}");
    let lookups = c
        .get("lookups")
        .and_then(json::Json::as_num)
        .ok_or_else(|| ctx("missing numeric `lookups`"))?;
    c.get("scheme")
        .and_then(json::Json::as_str)
        .ok_or_else(|| ctx("missing string `scheme`"))?;
    let tiers = c
        .get("tiers")
        .and_then(json::Json::as_arr)
        .ok_or_else(|| ctx("missing `tiers` array"))?;
    let mut hit_sum = 0.0;
    for (t, tier) in tiers.iter().enumerate() {
        tier.get("tier")
            .and_then(json::Json::as_str)
            .ok_or_else(|| ctx(&format!("tier {t}: missing string `tier`")))?;
        for key in ["hits", "misses", "evictions", "insertions", "bytes"] {
            let v = tier
                .get(key)
                .and_then(json::Json::as_num)
                .ok_or_else(|| ctx(&format!("tier {t}: missing numeric `{key}`")))?;
            if v < 0.0 {
                return Err(ctx(&format!("tier {t}: negative `{key}`")));
            }
        }
        hit_sum += tier.get("hits").and_then(json::Json::as_num).unwrap_or(0.0);
    }
    // Counters are integers riding in f64 JSON numbers: compare exactly
    // in the integer domain, not within a float margin.
    if hit_sum as u64 != lookups as u64 {
        return Err(ctx(&format!(
            "tier hits sum to {hit_sum} but lookups is {lookups} (must partition)"
        )));
    }
    let sketch = c
        .get("latency_ns")
        .ok_or_else(|| ctx("missing `latency_ns` sketch"))?;
    let count = sketch
        .get("count")
        .and_then(json::Json::as_num)
        .ok_or_else(|| ctx("latency_ns: missing numeric `count`"))?;
    let buckets = sketch
        .get("buckets")
        .and_then(json::Json::as_arr)
        .ok_or_else(|| ctx("latency_ns: missing `buckets` array"))?;
    let mut bucket_sum = 0.0;
    for (b, pair) in buckets.iter().enumerate() {
        let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
            ctx(&format!(
                "latency_ns: bucket {b} is not an [index, count] pair"
            ))
        })?;
        bucket_sum += pair[1]
            .as_num()
            .ok_or_else(|| ctx(&format!("latency_ns: bucket {b}: non-numeric count")))?;
    }
    if bucket_sum as u64 != count as u64 {
        return Err(ctx(&format!(
            "latency_ns: bucket counts sum to {bucket_sum} but count is {count}"
        )));
    }
    Ok(())
}

/// Validates one `CommReport` object: every window's byte matrix must
/// be square (`machines` rows of `machines` numeric columns).
fn check_comm_report(i: usize, c: &json::Json) -> Result<(), String> {
    let label = c.get("label").and_then(json::Json::as_str).unwrap_or("?");
    let ctx = |msg: &str| format!("attrib.comm[{i}] ({label}): {msg}");
    let machines = c
        .get("machines")
        .and_then(json::Json::as_num)
        .ok_or_else(|| ctx("missing numeric `machines`"))?;
    if machines < 1.0 || machines.fract() != 0.0 {
        return Err(ctx("`machines` must be a positive integer"));
    }
    let k = machines as usize;
    let windows = c
        .get("windows")
        .and_then(json::Json::as_arr)
        .ok_or_else(|| ctx("missing `windows` array"))?;
    for (w, win) in windows.iter().enumerate() {
        let rows = win
            .get("bytes")
            .and_then(json::Json::as_arr)
            .ok_or_else(|| ctx(&format!("window {w}: missing `bytes` matrix")))?;
        if rows.len() != k {
            return Err(ctx(&format!(
                "window {w}: matrix has {} rows, expected {k} (must be square)",
                rows.len()
            )));
        }
        for (r, row) in rows.iter().enumerate() {
            let cols = row
                .as_arr()
                .ok_or_else(|| ctx(&format!("window {w}: row {r} is not an array")))?;
            if cols.len() != k {
                return Err(ctx(&format!(
                    "window {w}: row {r} has {} columns, expected {k} (must be square)",
                    cols.len()
                )));
            }
            for (cix, cell) in cols.iter().enumerate() {
                let v = cell
                    .as_num()
                    .ok_or_else(|| ctx(&format!("window {w}: cell [{r}][{cix}] is not numeric")))?;
                if v < 0.0 {
                    return Err(ctx(&format!("window {w}: negative cell [{r}][{cix}]")));
                }
            }
        }
    }
    Ok(())
}

/// Validates one `StoreReport` object: page counters present,
/// `pages_read == pages_faulted + pages_hit`, and bytes consistent
/// with the page size (`bytes_read == pages_faulted × page_bytes`).
fn check_store_report(i: usize, c: &json::Json) -> Result<(), String> {
    let label = c.get("label").and_then(json::Json::as_str).unwrap_or("?");
    let ctx = |msg: &str| format!("attrib.store[{i}] ({label}): {msg}");
    for key in ["backend", "scheme"] {
        c.get(key)
            .and_then(json::Json::as_str)
            .ok_or_else(|| ctx(&format!("missing string `{key}`")))?;
    }
    let num = |key: &str| -> Result<u64, String> {
        let v = c
            .get(key)
            .and_then(json::Json::as_num)
            .ok_or_else(|| ctx(&format!("missing numeric `{key}`")))?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(ctx(&format!("`{key}` must be a non-negative integer")));
        }
        Ok(v as u64)
    };
    let page_rows = num("page_rows")?;
    let page_bytes = num("page_bytes")?;
    let pages_read = num("pages_read")?;
    let pages_faulted = num("pages_faulted")?;
    let pages_hit = num("pages_hit")?;
    let bytes_read = num("bytes_read")?;
    if page_rows == 0 || page_bytes == 0 {
        return Err(ctx("page geometry must be positive"));
    }
    if pages_faulted > pages_read {
        return Err(ctx(&format!(
            "pages_faulted {pages_faulted} exceeds pages_read {pages_read}"
        )));
    }
    if pages_faulted + pages_hit != pages_read {
        return Err(ctx(&format!(
            "pages_faulted {pages_faulted} + pages_hit {pages_hit} != pages_read {pages_read}"
        )));
    }
    if bytes_read != pages_faulted * page_bytes {
        return Err(ctx(&format!(
            "bytes_read {bytes_read} != pages_faulted {pages_faulted} × page_bytes {page_bytes}"
        )));
    }
    Ok(())
}

/// Validates the trace's top-level `attrib` section. With
/// `require = true`, a missing section (or one with no cache reports)
/// is an error; otherwise only a present section is checked.
fn check_attrib(doc: &json::Json, require: bool) -> Result<usize, String> {
    let Some(attrib) = doc.get("attrib") else {
        if require {
            return Err("missing top-level `attrib` section (was attribution published?)".into());
        }
        return Ok(0);
    };
    let caches = attrib
        .get("cache")
        .and_then(json::Json::as_arr)
        .ok_or("attrib: missing `cache` array")?;
    let comms = attrib
        .get("comm")
        .and_then(json::Json::as_arr)
        .ok_or("attrib: missing `comm` array")?;
    // `store` arrived after `cache`/`comm`; tolerate traces from older
    // binaries that omit it.
    let stores = attrib
        .get("store")
        .and_then(json::Json::as_arr)
        .unwrap_or(&[]);
    if require && caches.is_empty() && comms.is_empty() && stores.is_empty() {
        return Err("attrib section is empty (was attribution published?)".into());
    }
    for (i, c) in caches.iter().enumerate() {
        check_cache_report(i, c)?;
    }
    for (i, c) in comms.iter().enumerate() {
        check_comm_report(i, c)?;
    }
    for (i, c) in stores.iter().enumerate() {
        check_store_report(i, c)?;
    }
    Ok(caches.len() + comms.len() + stores.len())
}

fn run_bench_diff(old: &Path, new: &Path, json_out: bool) -> ExitCode {
    let load =
        |p: &Path| -> Result<_, String> { Ok(benchdiff::flatten_set(&benchdiff::load_set(p)?)) };
    let (old_set, new_set) = match (load(old), load(new)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };
    let rep = benchdiff::diff(&old_set, &new_set);
    if json_out {
        print!("{}", benchdiff::render_json(&rep));
    } else {
        print!("{}", benchdiff::render_text(&rep));
    }
    if rep.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_bench_snapshot(dir: &Path, out: &Path) -> ExitCode {
    let set = match benchdiff::load_set(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };
    let bundle = benchdiff::render_bundle(&set);
    if let Err(e) = std::fs::write(out, &bundle) {
        eprintln!("bench-diff: writing {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!(
        "bench-diff: wrote baseline bundle with {} bench(es) to {}",
        set.len(),
        out.display()
    );
    ExitCode::SUCCESS
}

fn run_validate_trace(path: &Path, require_stages: bool, require_attrib: bool) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("validate-trace: reading {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let jsonl = path.extension().is_some_and(|e| e == "jsonl");
    let mut attrib_reports = 0usize;
    let names = if jsonl {
        if require_attrib {
            eprintln!(
                "validate-trace: {}: --attrib applies to Chrome traces (the JSONL \
                 stream carries no attribution section)",
                path.display()
            );
            return ExitCode::from(2);
        }
        check_jsonl_trace(&src)
    } else {
        json::parse(&src)
            .map_err(|e| format!("not valid JSON: {e}"))
            .and_then(|doc| {
                attrib_reports = check_attrib(&doc, require_attrib)?;
                check_chrome_trace(&doc)
            })
    };
    let names = match names {
        Ok(n) => n,
        Err(e) => {
            eprintln!("validate-trace: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if require_stages {
        let missing: Vec<&str> = spp_telemetry::stage::PipelineStage::ALL
            .iter()
            .map(|s| s.short())
            .filter(|s| !names.iter().any(|n| n == s))
            .collect();
        if !missing.is_empty() {
            eprintln!(
                "validate-trace: {}: missing pipeline stage spans: {}",
                path.display(),
                missing.join(", ")
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "validate-trace: {}: ok ({} events{}{})",
        path.display(),
        names.len(),
        if require_stages {
            ", all pipeline stages present"
        } else {
            ""
        },
        if attrib_reports > 0 {
            format!(", {attrib_reports} attribution report(s) valid")
        } else {
            String::new()
        }
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "lint" => {
            let mut json = false;
            let mut root = None;
            let mut refresh = false;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--refresh-baseline" => refresh = true,
                    "--root" => match it.next() {
                        Some(r) => root = Some(PathBuf::from(r)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            run_lint(json, root, refresh)
        }
        "audit-hotpaths" => {
            let mut json = false;
            let mut root_filter = None;
            let mut dir = None;
            let mut refresh = false;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--refresh-baseline" => refresh = true,
                    "--root" => match it.next() {
                        Some(r) => root_filter = Some(r.clone()),
                        None => return usage(),
                    },
                    "--dir" => match it.next() {
                        Some(d) => dir = Some(PathBuf::from(d)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            run_audit_hotpaths(json, root_filter, dir, refresh)
        }
        "audit-determinism" => {
            let mut json = false;
            let mut root_filter = None;
            let mut dir = None;
            let mut refresh = false;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--refresh-baseline" => refresh = true,
                    "--root" => match it.next() {
                        Some(r) => root_filter = Some(r.clone()),
                        None => return usage(),
                    },
                    "--dir" => match it.next() {
                        Some(d) => dir = Some(PathBuf::from(d)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            run_audit_determinism(json, root_filter, dir, refresh)
        }
        "check-interleavings" => run_check_interleavings(&args[1..]),
        "validate-trace" => {
            let mut file = None;
            let mut stages = false;
            let mut attrib = false;
            for a in args.iter().skip(1) {
                match a.as_str() {
                    "--stages" => stages = true,
                    "--attrib" => attrib = true,
                    _ if file.is_none() && !a.starts_with('-') => file = Some(PathBuf::from(a)),
                    _ => return usage(),
                }
            }
            let Some(file) = file else { return usage() };
            run_validate_trace(&file, stages, attrib)
        }
        "bench-diff" => {
            let mut json_out = false;
            let mut snapshot = false;
            let mut paths: Vec<PathBuf> = Vec::new();
            for a in args.iter().skip(1) {
                match a.as_str() {
                    "--json" => json_out = true,
                    "--snapshot" => snapshot = true,
                    _ if !a.starts_with('-') => paths.push(PathBuf::from(a)),
                    _ => return usage(),
                }
            }
            if paths.len() != 2 {
                return usage();
            }
            if snapshot {
                run_bench_snapshot(&paths[0], &paths[1])
            } else {
                run_bench_diff(&paths[0], &paths[1], json_out)
            }
        }
        _ => usage(),
    }
}
