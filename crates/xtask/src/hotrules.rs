//! The hot-path rules H1–H4, applied transitively over the reachable
//! set computed by [`crate::callgraph`].
//!
//! | id               | invariant (for every fn reachable from a hot root)         |
//! |------------------|------------------------------------------------------------|
//! | `h1-alloc`       | no heap allocation: `Vec::new`/`vec!`/`.push(`/`.clone(`/  |
//! |                  | `.to_vec(`/`.collect(`/`format!`/`Box::new`/`with_capacity`|
//! |                  | — per-batch buffers are hoisted into reusable scratch      |
//! | `h2-panic`       | no panic path: L1's panic family plus `*_unchecked` and    |
//! |                  | raw CSR-array indexing (L1/L2 made transitive)             |
//! | `h3-lock`        | no lock or blocking acquisition: `.lock()`, `Condvar`      |
//! |                  | waits, blocking channel `recv`, thread `join`/`sleep`      |
//! | `h4-float-order` | no `f32`/`f64` accumulation in a fn that iterates a hash   |
//! |                  | collection (L3 made transitive: reductions must be         |
//! |                  | index-ordered so replicas agree bit-for-bit)               |
//!
//! Escapes: `// spp-hot: alloc(<reason>)` (H1 shorthand) or
//! `// spp-hot: allow(<rule>[, <rule>]): <reason>` on (or directly
//! above) the offending line. Every escape that fires is inventoried
//! in the baseline; an escape inside a reached fn that suppresses
//! nothing is itself a finding, so the annotation surface can only
//! shrink with the code.

use crate::callgraph::{CallGraph, Reached};
use crate::items::FileItems;
use crate::rules::{hash_collection_names, hash_iteration, token_positions};
use crate::scan::SourceFile;
use std::collections::BTreeSet;

/// One hot-path diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct HotFinding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`h1-alloc`, ..., or `hot-annotation` for malformed /
    /// stale annotations).
    pub rule: String,
    /// Qualified name of the offending function.
    pub func: String,
    /// Hot root whose reachability surfaced the finding.
    pub root: String,
    /// Human-readable explanation.
    pub message: String,
}

/// One escape annotation that fired (suppressed at least one would-be
/// finding); inventoried in the baseline.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EscapeSite {
    pub path: String,
    pub line: usize,
    /// Comma-joined rule ids the escape covers.
    pub rules: String,
    pub reason: String,
}

/// H1: allocation tokens. `Arc::clone(` is excluded (refcount bump,
/// not a heap allocation); `.clone(` still matches `x.clone()` on an
/// `Arc` field — annotate or restructure those.
const ALLOC_TOKENS: [&str; 16] = [
    "Vec::new",
    "vec!",
    ".push(",
    ".to_vec(",
    ".clone(",
    ".to_owned(",
    "format!",
    ".to_string(",
    "String::new",
    "String::from",
    "Box::new(",
    ".collect(",
    ".collect::<",
    ".extend(",
    // Call forms only — a bare `with_capacity(` would also match fn
    // definitions named `with_capacity`.
    "::with_capacity(",
    ".with_capacity(",
];

/// H2: panic-family macros and unchecked accessors (beyond L1).
const PANIC_TOKENS: [&str; 6] = [
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "unwrap_unchecked",
];

/// H2: CSR arrays whose raw indexing is only sound inside the checked
/// accessors (`crates/graph/src/csr.rs` is exempt — it *is* the
/// checked accessor layer).
const CSR_ARRAYS: [&str; 5] = ["row_ptr", "indptr", "indices", "col_idx", "row_offsets"];

/// H3: blocking acquisition tokens.
const BLOCKING_TOKENS: [&str; 8] = [
    ".lock()",
    ".recv()",
    ".recv_timeout(",
    ".wait(",
    ".wait_timeout(",
    ".wait_while(",
    ".join()",
    "sleep(",
];

/// Float-accumulation signals for H4 (fn-level; shared with D5 in
/// [`crate::detrules`]).
pub(crate) const FLOAT_ACC_TOKENS: [&str; 4] = ["+=", ".sum(", ".sum::<", ".fold("];

/// Per-line hits of any listed token.
pub(crate) fn token_hits<'a>(t: &str, tokens: &[&'a str]) -> Vec<&'a str> {
    let mut hits = Vec::new();
    for &tok in tokens {
        if !token_positions(t, tok).is_empty() {
            hits.push(tok);
        }
    }
    hits
}

/// Innermost fn owning `line_idx` in `file`, if any.
pub(crate) fn line_owner(file: &FileItems, line_idx: usize) -> Option<usize> {
    file.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.start <= line_idx && line_idx <= f.end)
        .max_by_key(|(_, f)| f.start)
        .map(|(i, _)| i)
}

/// Output of the transitive check pass.
#[derive(Debug, Default)]
pub struct HotReport {
    /// Unsuppressed violations plus annotation problems, sorted.
    pub findings: Vec<HotFinding>,
    /// Escapes that fired, sorted; the baseline inventory.
    pub escapes: Vec<EscapeSite>,
}

/// Checks every reached fn against H1–H4.
///
/// `files` and `scanned` are parallel (same indices as the graph's
/// `Node::file`).
pub fn check_reachable(
    files: &[FileItems],
    scanned: &[SourceFile],
    graph: &CallGraph,
    reach: &[Reached],
) -> HotReport {
    let mut findings: Vec<HotFinding> = Vec::new();
    let mut used_escapes: BTreeSet<(usize, usize)> = BTreeSet::new(); // (file, escape idx)

    // Annotation problems are findings regardless of reachability.
    for file in files {
        for (line, msg) in &file.bad {
            findings.push(HotFinding {
                path: file.rel_path.clone(),
                line: *line,
                rule: "hot-annotation".to_string(),
                func: String::new(),
                root: String::new(),
                message: msg.clone(),
            });
        }
    }

    // Hash-collection names per file, computed once for H4.
    let hash_names: Vec<Vec<String>> = scanned.iter().map(hash_collection_names).collect();

    fn suppress(
        files: &[FileItems],
        file_idx: usize,
        line: usize,
        rule: &str,
        used: &mut BTreeSet<(usize, usize)>,
    ) -> bool {
        let mut hit = false;
        for (ei, e) in files[file_idx].escapes.iter().enumerate() {
            if e.line == line && e.rules.contains(rule) {
                used.insert((file_idx, ei));
                hit = true;
            }
        }
        hit
    }

    for r in reach {
        let node = &graph.nodes[r.node];
        if node.item.stop.is_some() {
            continue;
        }
        let fi = node.file;
        let file = &files[fi];
        let sf = &scanned[fi];
        let csr_exempt = file.rel_path == "crates/graph/src/csr.rs";
        // H4 precondition: does this fn accumulate floats anywhere?
        let mut accumulates = false;
        for idx in node.item.start..=node.item.end.min(sf.lines.len().saturating_sub(1)) {
            if line_owner(file, idx).is_some_and(|o| file.fns[o].start != node.item.start) {
                continue;
            }
            if !token_hits(&sf.lines[idx].cleaned, &FLOAT_ACC_TOKENS).is_empty() {
                accumulates = true;
                break;
            }
        }
        for idx in node.item.start..=node.item.end.min(sf.lines.len().saturating_sub(1)) {
            // Innermost-item attribution: skip lines of nested fns.
            if line_owner(file, idx).is_some_and(|o| file.fns[o].start != node.item.start) {
                continue;
            }
            let t = &sf.lines[idx].cleaned;
            let lineno = idx + 1;
            // (rule, message) pairs for this line, suppressed below.
            let mut line_hits: Vec<(&str, String)> = Vec::new();
            // H1: allocation.
            for tok in token_hits(t, &ALLOC_TOKENS) {
                line_hits.push((
                    "h1-alloc",
                    format!(
                        "`{tok}` allocates on a hot path (reached from root \
                         `{}` at depth {}); hoist into caller-provided or \
                         pooled scratch, or annotate \
                         `// spp-hot: alloc(<reason>)`",
                        r.root, r.depth
                    ),
                ));
            }
            // H2: panic path.
            let mut panic_hits = token_hits(t, &PANIC_TOKENS);
            for p in token_positions(t, ".unwrap") {
                if t[p + 7..].starts_with("()") {
                    panic_hits.push(".unwrap()");
                }
            }
            if !token_positions(t, "get_unchecked").is_empty() {
                panic_hits.push("get_unchecked");
            }
            if !csr_exempt {
                for arr in CSR_ARRAYS {
                    for p in token_positions(t, arr) {
                        let rest = &t[p + arr.len()..];
                        if rest.starts_with('[') || rest.starts_with("()[") {
                            panic_hits.push(arr);
                        }
                    }
                }
            }
            for tok in panic_hits {
                line_hits.push((
                    "h2-panic",
                    format!(
                        "`{tok}` can panic on a hot path (reached from root \
                         `{}` at depth {}); surface the workspace error \
                         types or prove the access in a checked accessor",
                        r.root, r.depth
                    ),
                ));
            }
            // H3: blocking.
            for tok in token_hits(t, &BLOCKING_TOKENS) {
                line_hits.push((
                    "h3-lock",
                    format!(
                        "`{tok}` blocks on a hot path (reached from root \
                         `{}` at depth {}); hot kernels must stay lock-free \
                         — move synchronization to the batch boundary",
                        r.root, r.depth
                    ),
                ));
            }
            // H4: float reduction over unordered iteration.
            if accumulates {
                if let Some(name) = hash_iteration(t, &hash_names[fi]) {
                    line_hits.push((
                        "h4-float-order",
                        format!(
                            "iteration over hash collection `{name}` in a \
                             float-accumulating fn (reached from root `{}`); \
                             reductions on hot paths must be index-ordered \
                             so replicas agree bit-for-bit",
                            r.root
                        ),
                    ));
                }
            }
            for (rule, message) in line_hits {
                if !suppress(files, fi, lineno, rule, &mut used_escapes) {
                    findings.push(HotFinding {
                        path: file.rel_path.clone(),
                        line: lineno,
                        rule: rule.to_string(),
                        func: node.item.qual.clone(),
                        root: r.root.clone(),
                        message,
                    });
                }
            }
        }
    }

    // Stale escapes: annotations inside reached fns that fired nothing.
    let reached_starts: BTreeSet<(usize, usize)> = reach
        .iter()
        .filter(|r| graph.nodes[r.node].item.stop.is_none())
        .map(|r| (graph.nodes[r.node].file, graph.nodes[r.node].item.start))
        .collect();
    let mut escapes: Vec<EscapeSite> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (ei, e) in file.escapes.iter().enumerate() {
            if used_escapes.contains(&(fi, ei)) {
                escapes.push(EscapeSite {
                    path: file.rel_path.clone(),
                    line: e.line,
                    rules: e.rules.iter().cloned().collect::<Vec<_>>().join(","),
                    reason: e.reason.clone(),
                });
                continue;
            }
            let owner = line_owner(file, e.line.saturating_sub(1));
            if owner.is_some_and(|o| reached_starts.contains(&(fi, file.fns[o].start))) {
                findings.push(HotFinding {
                    path: file.rel_path.clone(),
                    line: e.line,
                    rule: "hot-annotation".to_string(),
                    func: owner.map(|o| file.fns[o].qual.clone()).unwrap_or_default(),
                    root: String::new(),
                    message: format!(
                        "stale escape: `spp-hot: allow({})` suppresses \
                         nothing on this line — remove the annotation",
                        e.rules.iter().cloned().collect::<Vec<_>>().join(",")
                    ),
                });
            }
        }
    }

    findings.sort();
    findings.dedup();
    escapes.sort();
    escapes.dedup();
    HotReport { findings, escapes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::scan::scan_source;

    fn analyze(sources: &[(&str, &str)]) -> HotReport {
        let scanned: Vec<SourceFile> = sources.iter().map(|(p, s)| scan_source(p, s)).collect();
        let files: Vec<FileItems> = scanned
            .iter()
            .zip(sources.iter())
            .map(|(sf, (_, s))| parse_items(sf, s))
            .collect();
        let graph = CallGraph::build(&files);
        let reach = graph.reach(&graph.roots());
        check_reachable(&files, &scanned, &graph, &reach)
    }

    #[test]
    fn transitive_unwrap_is_caught_two_levels_down() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root() {\n    mid();\n}\nfn mid() {\n    deep();\n}\nfn deep(x: Option<u32>) {\n    x.unwrap();\n}\n",
        )]);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].rule, "h2-panic");
        assert_eq!(rep.findings[0].func, "deep");
        assert_eq!(rep.findings[0].root, "a.root");
    }

    #[test]
    fn unannotated_push_is_caught_and_escape_suppresses() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root(v: &mut Vec<u32>) {\n    v.push(1);\n    v.push(2); // spp-hot: alloc(amortized append)\n}\n",
        )]);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].rule, "h1-alloc");
        assert_eq!(rep.findings[0].line, 3);
        assert_eq!(rep.escapes.len(), 1);
        assert_eq!(rep.escapes[0].line, 4);
    }

    #[test]
    fn cold_fns_are_not_checked() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root() {}\nfn cold(x: Option<u32>) {\n    x.unwrap();\n    Vec::<u32>::new();\n}\n",
        )]);
        assert!(rep.findings.is_empty());
    }

    #[test]
    fn blocking_tokens_flagged() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root(m: &Mutex<u32>) {\n    let _g = m.lock();\n}\n",
        )]);
        assert!(rep.findings.iter().any(|f| f.rule == "h3-lock"));
    }

    #[test]
    fn float_accumulation_over_hash_iteration_flagged() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root(weights: &HashMap<u32, f64>) -> f64 {\n    let mut acc = 0.0;\n    for (_k, w) in weights.iter() {\n        acc += w;\n    }\n    acc\n}\n",
        )]);
        assert!(rep.findings.iter().any(|f| f.rule == "h4-float-order"));
    }

    #[test]
    fn stale_escape_in_reached_fn_is_flagged() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root() {\n    let x = 1; // spp-hot: alloc(nothing here)\n    let _ = x;\n}\n",
        )]);
        assert!(rep
            .findings
            .iter()
            .any(|f| f.rule == "hot-annotation" && f.message.contains("stale escape")));
    }

    #[test]
    fn stop_boundary_suppresses_checks() {
        let rep = analyze(&[(
            "crates/a/src/lib.rs",
            "// spp-hot(a.root)\nfn root() {\n    cold_reg();\n}\n// spp-hot: stop(one-time registration)\nfn cold_reg() {\n    Vec::<u32>::new();\n}\n",
        )]);
        assert!(rep.findings.is_empty());
    }
}
