//! Static-analysis library behind `cargo xtask`.
//!
//! Three analyses share the lexical source model in [`scan`]:
//!
//! - the line-level invariant linter (rules L1–L8, [`rules`] /
//!   [`report`]), run by `cargo xtask lint`;
//! - the transitive hot-path analyzer (rules H1–H4, [`items`] /
//!   [`callgraph`] / [`hotrules`] / [`hotreport`]), run by
//!   `cargo xtask audit-hotpaths`. It parses function items and call
//!   sites out of the cleaned source, builds an intra-workspace call
//!   graph, and checks every function reachable from a declared
//!   `// spp-hot(<name>)` root for allocation, panic, blocking, and
//!   float-ordering hazards (DESIGN.md §13);
//! - the transitive determinism analyzer (rules D1–D5, [`detrules`] /
//!   [`detreport`]), run by `cargo xtask audit-determinism`. It walks
//!   the same call graph from `// spp-det(<name>)` roots and checks
//!   every reachable function for the source constructs that break the
//!   §9 bit-identity contract: unordered hash iteration, unseeded RNG,
//!   ambient reads, worker-identity leaks, and order-sensitive float
//!   reductions (DESIGN.md §17).
//!
//! All three gates diff their committed baseline under `results/` via
//! [`baseline`]; `--refresh-baseline` rewrites the snapshot.

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub mod baseline;
pub mod benchdiff;
pub mod callgraph;
pub mod detreport;
pub mod detrules;
pub mod hotreport;
pub mod hotrules;
pub mod items;
pub mod json;
pub mod report;
pub mod rules;
pub mod scan;
pub mod walk;
