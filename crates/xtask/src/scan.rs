//! Lexical source model for the invariant linter.
//!
//! The build environment has no crates.io access, so `syn` is not
//! available; instead the linter works on a *cleaned* per-line view of
//! each source file produced by a small lexer that:
//!
//! - blanks out comments, string/char literal contents, and raw strings
//!   (preserving line structure so diagnostics keep real line numbers);
//! - records which lines fall inside `#[cfg(test)]` items (rules skip
//!   them — tests are allowed to unwrap and panic);
//! - extracts `// spp-lint: allow(<rules>): <justification>` pragmas,
//!   which suppress findings on their own line, or on the next line when
//!   the pragma stands alone.
//!
//! This is deliberately token-level, not a full parse: every rule the
//! linter enforces (see [`crate::rules`]) is phrased so that a lexical
//! match is sufficient, which keeps the linter dependency-free.

use std::collections::BTreeSet;

/// One analyzed source line.
#[derive(Debug)]
pub struct LineInfo {
    /// Source text with comments and literal contents blanked.
    pub cleaned: String,
    /// True if the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Rule ids suppressed on this line via pragmas (normalized
    /// lowercase).
    pub allows: BTreeSet<String>,
    /// Justification from a trailing `// spp-sync: relaxed(<reason>)`
    /// annotation, if present (L8; empty string when the parentheses
    /// are empty).
    pub relaxed_note: Option<String>,
}

/// A scanned source file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Lines, index 0 = line 1.
    pub lines: Vec<LineInfo>,
    /// Pragmas that were malformed (missing justification or empty rule
    /// list); reported as findings by the engine.
    pub bad_pragmas: Vec<(usize, String)>,
}

/// Lexer state for the cleaning pass.
#[derive(PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

fn clean_source(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut mode = Mode::Code;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    mode = Mode::Str;
                    out.push('"');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        mode = Mode::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let is_lifetime = match next {
                        Some(n) if n.is_alphabetic() || n == '_' => bytes.get(i + 2) != Some(&'\''),
                        _ => false,
                    };
                    if is_lifetime {
                        out.push('\'');
                    } else {
                        mode = Mode::Char;
                        out.push('\'');
                    }
                }
                _ => out.push(c),
            },
            Mode::LineComment => {
                if c == '\n' {
                    mode = Mode::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            Mode::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else {
                    out.push(' ');
                }
            }
            Mode::Str => match c {
                '\\' => {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    mode = Mode::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && bytes.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        mode = Mode::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                    out.push(' ');
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            Mode::Char => match c {
                '\\' => {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '\'' => {
                    mode = Mode::Code;
                    out.push('\'');
                }
                '\n' => {
                    // Unterminated char (shouldn't happen in valid Rust);
                    // fail open.
                    mode = Mode::Code;
                    out.push('\n');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Marks lines inside `#[cfg(test)]` items. Returns one flag per line.
fn test_region_flags(cleaned_lines: &[&str]) -> Vec<bool> {
    #[derive(PartialEq)]
    enum State {
        Code,
        /// Saw `#[cfg(test)]`; waiting for the item's opening brace. A
        /// `;` first means the attribute guarded a braceless item.
        Pending,
        /// Inside the braced test item; tracks brace depth.
        Inside(u32),
    }
    let mut flags = vec![false; cleaned_lines.len()];
    let mut state = State::Code;
    for (idx, line) in cleaned_lines.iter().enumerate() {
        if state == State::Code && line.contains("#[cfg(test)]") {
            state = State::Pending;
            // Content after the attribute on the same line may already
            // open the block; fall through to the char walk below.
        }
        match state {
            State::Code => {}
            State::Pending => {
                flags[idx] = true;
                let start = line.find("#[cfg(test)]").map_or(0, |p| p + 12);
                for c in line.chars().skip(start) {
                    match c {
                        '{' => {
                            state = State::Inside(1);
                            break;
                        }
                        ';' => {
                            state = State::Code;
                            break;
                        }
                        _ => {}
                    }
                }
                // Re-walk the remainder if we just entered the block.
                if let State::Inside(_) = state {
                    let after = line.find('{').map_or(line.len(), |p| p + 1);
                    let mut depth = 1u32;
                    for c in line.chars().skip(after) {
                        match c {
                            '{' => depth += 1,
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    state = if depth == 0 {
                        State::Code
                    } else {
                        State::Inside(depth)
                    };
                }
            }
            State::Inside(mut depth) => {
                flags[idx] = true;
                for c in line.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                    if depth == 0 {
                        break;
                    }
                }
                state = if depth == 0 {
                    State::Code
                } else {
                    State::Inside(depth)
                };
            }
        }
    }
    flags
}

/// Parses a pragma comment body. Returns `(rules, ok)`; `ok` is false
/// when the rule list is empty or the justification is missing.
fn parse_pragma(after: &str) -> (BTreeSet<String>, bool) {
    let mut rules = BTreeSet::new();
    let Some(open) = after.find("allow(") else {
        return (rules, false);
    };
    let rest = &after[open + 6..];
    let Some(close) = rest.find(')') else {
        return (rules, false);
    };
    for r in rest[..close].split(',') {
        let r = r.trim().to_ascii_lowercase();
        if !r.is_empty() {
            rules.insert(r);
        }
    }
    // Justification: non-empty text after "): ".
    let tail = rest[close + 1..].trim();
    let justified = tail
        .strip_prefix(':')
        .map(str::trim)
        .is_some_and(|j| !j.is_empty());
    let ok = !rules.is_empty() && justified;
    (rules, ok)
}

/// Parses a `// spp-sync: relaxed(<reason>)` annotation from a raw
/// source line (the cleaning pass blanks comments, so this reads the
/// raw text). Returns the reason — possibly empty — when the marker is
/// present; the L8 rule treats an empty reason as missing.
fn parse_relaxed_note(raw: &str) -> Option<String> {
    let pos = raw.find("spp-sync:")?;
    let rest = raw[pos + 9..].trim_start();
    let body = rest.strip_prefix("relaxed(")?;
    let close = body.rfind(')')?;
    Some(body[..close].trim().to_string())
}

/// Scans `src`, producing the per-line model used by all rules.
pub fn scan_source(rel_path: &str, src: &str) -> SourceFile {
    let cleaned = clean_source(src);
    let cleaned_lines: Vec<&str> = cleaned.split('\n').collect();
    let raw_lines: Vec<&str> = src.split('\n').collect();
    let flags = test_region_flags(&cleaned_lines);

    let mut bad_pragmas = Vec::new();
    let mut file_allows: BTreeSet<String> = BTreeSet::new();
    // allows[i] applies to line i (0-based).
    let mut allows: Vec<BTreeSet<String>> = vec![BTreeSet::new(); raw_lines.len()];
    for (idx, raw) in raw_lines.iter().enumerate() {
        let Some(pos) = raw.find("spp-lint:") else {
            continue;
        };
        let (rules, ok) = parse_pragma(&raw[pos + 9..]);
        if !ok {
            bad_pragmas.push((
                idx + 1,
                "malformed spp-lint pragma: expected \
                 `spp-lint: allow(<rule>[, <rule>]): <justification>`"
                    .to_string(),
            ));
            continue;
        }
        let trimmed = raw.trim_start();
        if trimmed.starts_with("//!") {
            // Inner doc pragma: file scope.
            file_allows.extend(rules);
        } else if trimmed.starts_with("//") {
            // Stand-alone pragma line: applies to the next line.
            if let Some(slot) = allows.get_mut(idx + 1) {
                slot.extend(rules);
            }
        } else {
            // Trailing pragma: applies to its own line.
            allows[idx].extend(rules);
        }
    }

    let lines = cleaned_lines
        .iter()
        .enumerate()
        .map(|(idx, cl)| {
            let mut a = allows.get(idx).cloned().unwrap_or_default();
            a.extend(file_allows.iter().cloned());
            LineInfo {
                cleaned: (*cl).to_string(),
                in_test: flags.get(idx).copied().unwrap_or(false),
                allows: a,
                relaxed_note: raw_lines.get(idx).and_then(|r| parse_relaxed_note(r)),
            }
        })
        .collect();

    SourceFile {
        rel_path: rel_path.to_string(),
        lines,
        bad_pragmas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let c = clean_source("a // unwrap()\nb /* panic! */ c");
        assert!(!c.contains("unwrap"));
        assert!(!c.contains("panic"));
        assert!(c.contains('a') && c.contains('b') && c.contains('c'));
    }

    #[test]
    fn strips_string_contents_preserving_lines() {
        let c = clean_source("let s = \"panic!\\\"more\";\nnext");
        assert!(!c.contains("panic"));
        assert_eq!(c.split('\n').count(), 2);
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let c = clean_source("let r = r#\"unwrap()\"#; let c = '\\''; fn f<'a>() {}");
        assert!(!c.contains("unwrap"));
        assert!(c.contains("<'a>"));
    }

    #[test]
    fn nested_block_comments() {
        let c = clean_source("x /* a /* b */ panic! */ y");
        assert!(!c.contains("panic"));
        assert!(c.contains('y'));
    }

    #[test]
    fn test_region_detection() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}";
        let f = scan_source("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_swallow_code() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn c() {}";
        let f = scan_source("x.rs", src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn trailing_pragma_applies_to_line() {
        let src = "x.unwrap(); // spp-lint: allow(l1-no-panic): fixture";
        let f = scan_source("x.rs", src);
        assert!(f.lines[0].allows.contains("l1-no-panic"));
        assert!(f.bad_pragmas.is_empty());
    }

    #[test]
    fn standalone_pragma_applies_to_next_line() {
        let src = "// spp-lint: allow(l1-no-panic): fixture\nx.unwrap();";
        let f = scan_source("x.rs", src);
        assert!(!f.lines[0].allows.contains("l1-no-panic"));
        assert!(f.lines[1].allows.contains("l1-no-panic"));
    }

    #[test]
    fn file_level_pragma_via_inner_doc() {
        let src = "//! spp-lint: allow(l2-csr-index): whole file justified\nfn a() {}\nfn b() {}";
        let f = scan_source("x.rs", src);
        assert!(f.lines.iter().all(|l| l.allows.contains("l2-csr-index")));
    }

    #[test]
    fn relaxed_note_parsed_from_raw_line() {
        let src = "x.load_relaxed(); // spp-sync: relaxed(tally; exact via RMW)\ny.load_relaxed();\nz.load_relaxed(); // spp-sync: relaxed()";
        let f = scan_source("x.rs", src);
        assert_eq!(
            f.lines[0].relaxed_note.as_deref(),
            Some("tally; exact via RMW")
        );
        assert_eq!(f.lines[1].relaxed_note, None);
        assert_eq!(f.lines[2].relaxed_note.as_deref(), Some(""));
    }

    #[test]
    fn pragma_without_justification_is_flagged() {
        let src = "x.unwrap(); // spp-lint: allow(l1-no-panic)";
        let f = scan_source("x.rs", src);
        assert_eq!(f.bad_pragmas.len(), 1);
        assert!(!f.lines[0].allows.contains("l1-no-panic"));
    }
}
