//! The SALIENT++ workspace invariant rules.
//!
//! Each rule is phrased so a lexical check over the cleaned source (see
//! [`crate::scan`]) is sufficient — no type information required:
//!
//! | id              | invariant                                                      |
//! |-----------------|----------------------------------------------------------------|
//! | `l1-no-panic`   | library code never `unwrap`/`expect`/`panic!` (hot paths must  |
//! |                 | surface the workspace error types instead of aborting an epoch)|
//! | `l2-csr-index`  | CSR offset/column arrays are only indexed inside the checked   |
//! |                 | accessors in `crates/graph/src/csr.rs`                         |
//! | `l3-unordered-iter` | ordering-sensitive modules (cache ranking, reorder         |
//! |                 | permutations, partition assignment) never iterate a            |
//! |                 | `HashMap`/`HashSet` — replicas must rank identically           |
//! | `l4-unbounded`  | no `std::thread::spawn` / unbounded channels / ad-hoc scoped   |
//! |                 | thread fan-out outside `spp-runtime` and the sanctioned pool   |
//! |                 | crate (`crates/pool`); concurrency goes through                |
//! |                 | `WorkerPool`, pipeline stages use bounded queues               |
//! | `l5-prob-clamp` | VIP modules route every computed probability store through     |
//! |                 | `clamp01` (Proposition 1: `p ∈ [0, 1]`)                        |
//! | `l6-raw-instant`| no raw `Instant::now()` outside the telemetry clock            |
//! |                 | (`spp-telemetry`), `spp-bench`, and the DES virtual clock —    |
//! |                 | one clock per process keeps span timestamps on a shared        |
//! |                 | monotonic axis (DESIGN.md §10)                                 |
//! | `l7-raw-atomics`| no `std::sync::atomic` / memory-`Ordering::` tokens outside    |
//! |                 | `spp-sync` (and `spp-check`, which implements the model        |
//! |                 | checker those wrappers report to) — every atomic the workspace |
//! |                 | runs is one `cargo xtask check-interleavings` explores         |
//! |                 | (DESIGN.md §12)                                                |
//! | `l8-relaxed-note`| every `*_relaxed(` call site carries a same-line              |
//! |                 | `// spp-sync: relaxed(<reason>)` annotation justifying why     |
//! |                 | the weakest ordering is sound there; a note left on a code     |
//! |                 | line with no remaining `*_relaxed(` call is flagged as stale   |
//!
//! Suppress a finding with
//! `// spp-lint: allow(<rule>): <justification>` (trailing or on the
//! preceding line; `//!` form for file scope). The justification is
//! mandatory.

use crate::scan::SourceFile;

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (e.g. `l1-no-panic`).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

/// All rule ids, for pragma validation and `--json` counts.
pub const RULE_IDS: [&str; 8] = [
    "l1-no-panic",
    "l2-csr-index",
    "l3-unordered-iter",
    "l4-unbounded",
    "l5-prob-clamp",
    "l6-raw-instant",
    "l7-raw-atomics",
    "l8-relaxed-note",
];

/// One annotated `*_relaxed(` call site (listed in the lint report so
/// the relaxed-ordering surface stays reviewable in one place).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RelaxedSite {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The justification from the `// spp-sync: relaxed(<reason>)`
    /// annotation.
    pub reason: String,
}

/// True when `s[idx]` is preceded by an identifier character (so `idx`
/// does not start a standalone token).
fn has_ident_prefix(s: &str, idx: usize) -> bool {
    s[..idx]
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Byte offsets of standalone occurrences of `needle` in `hay`: the
/// match must not butt against identifier characters on the sides where
/// the needle itself starts/ends with one (so `.unwrap` matches in
/// `x.unwrap()` but not `x.unwrap_or(..)`).
pub(crate) fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let ident_start = needle
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let ident_end = needle
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let at = from + p;
        let end = at + needle.len();
        let pre_ok = !ident_start || !has_ident_prefix(hay, at);
        let post_ok = !ident_end
            || !hay[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok && post_ok {
            out.push(at);
        }
        from = end;
    }
    out
}

fn applies_l1(path: &str) -> bool {
    // All linted library sources.
    let _ = path;
    true
}

/// L1: no `unwrap()` / `expect(..)` / panic-family macros in library
/// code.
fn check_l1(file: &SourceFile, findings: &mut Vec<Finding>) {
    const MACROS: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows.contains("l1-no-panic") {
            continue;
        }
        let t = &line.cleaned;
        let mut hits: Vec<String> = Vec::new();
        for p in token_positions(t, ".unwrap") {
            if t[p + 7..].starts_with("()") {
                hits.push(".unwrap()".to_string());
            }
        }
        for p in token_positions(t, ".expect") {
            if t[p + 7..].starts_with('(') {
                hits.push(".expect(..)".to_string());
            }
        }
        for m in MACROS {
            let bare = &m[..m.len() - 1];
            for p in token_positions(t, bare) {
                if t[p + bare.len()..].starts_with('!') {
                    hits.push(m.to_string());
                }
            }
        }
        for h in hits {
            findings.push(Finding {
                path: file.rel_path.clone(),
                line: idx + 1,
                rule: "l1-no-panic".to_string(),
                message: format!(
                    "{h} in library code; return the crate error type (hot \
                     paths must not abort mid-epoch)"
                ),
            });
        }
    }
}

fn applies_l2(path: &str) -> bool {
    path != "crates/graph/src/csr.rs"
        && (path.starts_with("crates/graph/src")
            || path.starts_with("crates/sampler/src")
            || path.starts_with("crates/core/src"))
}

/// L2: CSR arrays are only indexed via the checked accessors.
fn check_l2(file: &SourceFile, findings: &mut Vec<Finding>) {
    // Names of CSR offset/column arrays; `row_ptr()[` / `col()[` catch
    // raw indexing through the accessor getters as well.
    const ARRAYS: [&str; 5] = ["row_ptr", "indptr", "indices", "col_idx", "row_offsets"];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows.contains("l2-csr-index") {
            continue;
        }
        let t = &line.cleaned;
        for name in ARRAYS {
            for p in token_positions(t, name) {
                let rest = &t[p + name.len()..];
                if rest.starts_with('[') || rest.starts_with("()[") {
                    findings.push(Finding {
                        path: file.rel_path.clone(),
                        line: idx + 1,
                        rule: "l2-csr-index".to_string(),
                        message: format!(
                            "raw indexing into CSR array `{name}`; use the \
                             checked CsrGraph accessors (neighbors/degree) \
                             instead"
                        ),
                    });
                }
            }
        }
    }
}

/// Files whose outputs feed deterministic, replica-agreed rankings.
fn applies_l3(path: &str) -> bool {
    const ORDER_SENSITIVE: [&str; 8] = [
        "crates/core/src/policies.rs",
        "crates/core/src/cache.rs",
        "crates/core/src/reorder.rs",
        "crates/core/src/vip.rs",
        "crates/core/src/vip_general.rs",
        "crates/core/src/vip_partition.rs",
        "crates/core/src/feature_store.rs",
        "crates/partition/src/",
    ];
    ORDER_SENSITIVE.iter().any(|p| path.starts_with(p))
}

/// L3: no iteration over `HashMap`/`HashSet` in ordering-sensitive code.
///
/// First collects names bound to hash collections (`x: HashMap<..>`,
/// `x = HashMap::new()`, …), then flags `x.iter()` / `x.keys()` /
/// `x.values()` / `x.drain(..)` / `x.into_iter()` / `for .. in [&]x`.
/// Names bound to `HashMap`/`HashSet` values anywhere in `file`
/// (declarations, fields, or assignments). Shared with the hot-path
/// H4 rule, which applies the same iteration test transitively.
pub(crate) fn hash_collection_names(file: &SourceFile) -> Vec<String> {
    let mut hash_names: Vec<String> = Vec::new();
    for line in &file.lines {
        let t = &line.cleaned;
        for ty in ["HashMap", "HashSet"] {
            for p in token_positions(t, ty) {
                // Look left for `name :` or `name =` (skipping
                // `let`/`mut`/`&`/whitespace and generics of `=`-form).
                // Reference-typed bindings (`name: &HashMap`,
                // `name: &mut HashMap`) strip the borrow first.
                let mut before = t[..p].trim_end();
                if let Some(b) = before.strip_suffix("mut") {
                    let b = b.trim_end();
                    if let Some(b) = b.strip_suffix('&') {
                        before = b.trim_end();
                    }
                } else if let Some(b) = before.strip_suffix('&') {
                    before = b.trim_end();
                }
                let before = before
                    .strip_suffix(':')
                    .or_else(|| before.strip_suffix('='))
                    .or_else(|| before.strip_suffix("::<"))
                    .unwrap_or("");
                let name: String = before
                    .trim_end()
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !name.is_empty() && !hash_names.contains(&name) {
                    hash_names.push(name);
                }
            }
        }
    }
    hash_names
}

/// Returns the hash-collection name iterated on `t`, if any: either
/// `name.iter()`-style adapters or a `for .. in [&|&mut ][self.]name`
/// loop header.
pub(crate) fn hash_iteration(t: &str, hash_names: &[String]) -> Option<String> {
    const ITERS: [&str; 5] = [".iter()", ".keys()", ".values()", ".into_iter()", ".drain("];
    for name in hash_names {
        for p in token_positions(t, name) {
            let rest = &t[p + name.len()..];
            let iterated = ITERS.iter().any(|it| rest.starts_with(it));
            // `for .. in [&|&mut ][self.]name`
            let mut pre = t[..p].trim_end();
            for strip in ["self.", "&mut", "&"] {
                pre = pre.strip_suffix(strip).unwrap_or(pre).trim_end();
            }
            let in_for = (pre.ends_with(" in") || pre == "in") && t.contains("for ");
            if iterated || in_for {
                return Some(name.clone());
            }
        }
    }
    None
}

fn check_l3(file: &SourceFile, findings: &mut Vec<Finding>) {
    let hash_names = hash_collection_names(file);
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows.contains("l3-unordered-iter") {
            continue;
        }
        let t = &line.cleaned;
        if let Some(name) = hash_iteration(t, &hash_names) {
            findings.push(Finding {
                path: file.rel_path.clone(),
                line: idx + 1,
                rule: "l3-unordered-iter".to_string(),
                message: format!(
                    "iteration over hash collection `{name}` in \
                     ordering-sensitive code; use BTreeMap/BTreeSet \
                     or sort explicitly so replicas rank identically"
                ),
            });
        }
    }
}

fn applies_l4(path: &str) -> bool {
    // The sanctioned homes for bounded concurrency: the runtime, the
    // worker-pool crate it re-exports (`spp_runtime::pool`), and the
    // barriered all-to-all exchange in spp-comm.
    // alltoall's run_machines keeps scoped one-thread-per-rank fan-out:
    // ranks synchronize through barriers every exchange, so they must
    // all run concurrently — a pooled schedule would deadlock.
    !(path.starts_with("crates/runtime/src")
        || path.starts_with("crates/pool/src")
        || path == "crates/comm/src/alltoall.rs")
}

/// L4: no `std::thread::spawn`, unbounded channels, or ad-hoc scoped
/// thread fan-out outside the sanctioned crates. Data-parallel work
/// goes through `spp-pool`'s `WorkerPool` (fixed worker budget,
/// deterministic decomposition) instead of per-call-site
/// `crossbeam::thread::scope` blocks.
fn check_l4(file: &SourceFile, findings: &mut Vec<Finding>) {
    const BANNED: [(&str, &str); 5] = [
        (
            "thread::spawn(",
            "free-running thread; pipeline stages belong to spp-runtime's bounded executor",
        ),
        (
            "mpsc::channel(",
            "unbounded std channel; use a bounded queue (mpsc::sync_channel) so stages backpressure",
        ),
        (
            "channel::unbounded",
            "unbounded crossbeam channel; use a bounded queue so stages backpressure",
        ),
        (
            "unbounded_channel",
            "unbounded channel; use a bounded queue so stages backpressure",
        ),
        (
            "crossbeam::thread::scope(",
            "ad-hoc scoped fan-out; schedule on spp-pool's WorkerPool so concurrency stays \
             bounded by one worker budget",
        ),
    ];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows.contains("l4-unbounded") {
            continue;
        }
        let t = &line.cleaned;
        for (pat, why) in BANNED {
            let mut from = 0;
            while let Some(p) = t[from..].find(pat) {
                let at = from + p;
                if !has_ident_prefix(t, at) {
                    findings.push(Finding {
                        path: file.rel_path.clone(),
                        line: idx + 1,
                        rule: "l4-unbounded".to_string(),
                        message: format!(
                            "`{}` outside spp-runtime: {why}",
                            pat.trim_end_matches('(')
                        ),
                    });
                }
                from = at + pat.len();
            }
        }
    }
}

fn applies_l5(path: &str) -> bool {
    matches!(
        path,
        "crates/core/src/vip.rs"
            | "crates/core/src/vip_general.rs"
            | "crates/core/src/vip_partition.rs"
    )
}

/// L5: probability stores in the VIP modules go through `clamp01`.
///
/// Flags indexed stores (`buf[i] = expr;`) and deref stores
/// (`*slot = expr;`) into probability buffers (see [`is_prob_target`])
/// whose right-hand side is a computed expression not wrapped in
/// `clamp01(..)`. Bare identifiers, field accesses, and numeric
/// literals are allowed (copies of already-clamped values). Stores into
/// non-probability buffers (partition assignments, load counters) are
/// out of scope.
fn check_l5(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows.contains("l5-prob-clamp") {
            continue;
        }
        let t = line.cleaned.trim();
        let Some((lhs, rhs)) = split_assignment(t) else {
            continue;
        };
        let indexed_store = lhs.ends_with(']') && lhs.contains('[') && !lhs.contains("..");
        let deref_store = lhs.starts_with('*');
        if !indexed_store && !deref_store {
            continue;
        }
        if !is_prob_target(lhs) {
            continue;
        }
        let rhs = rhs.trim().trim_end_matches(';').trim();
        if rhs.contains("clamp01(") || is_simple_expr(rhs) {
            continue;
        }
        findings.push(Finding {
            path: file.rel_path.clone(),
            line: idx + 1,
            rule: "l5-prob-clamp".to_string(),
            message: "computed probability store must pass through clamp01 \
                      (Proposition 1: p ∈ [0, 1])"
                .to_string(),
        });
    }
}

/// Splits `lhs = rhs` at a plain assignment `=` (not `==`, `<=`, `=>`,
/// compound `+=`, …). Returns `None` for non-assignments.
fn split_assignment(t: &str) -> Option<(&str, &str)> {
    let bytes = t.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'=' {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| bytes[j]);
        let next = bytes.get(i + 1);
        let compound = matches!(
            prev,
            Some(b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^')
        );
        if compound || next == Some(&b'=') || next == Some(&b'>') {
            // Skip the full operator to avoid re-matching its tail.
            continue;
        }
        // `*slot = ..` keeps the `*`; it marks a deref store, not `*=`.
        return Some((t[..i].trim(), &t[i + 1..]));
    }
    None
}

/// True when a store target names a probability buffer. The VIP modules
/// use a small fixed vocabulary for these (`cur`/`prev` hop vectors,
/// `out`/`o` combined values, anything mentioning prob/vip/score/hop);
/// integer bookkeeping (`loads`, `limits`, `assignment`, …) is excluded.
fn is_prob_target(lhs: &str) -> bool {
    let name: String = lhs
        .trim_start_matches('*')
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let name = name.to_ascii_lowercase();
    matches!(
        name.as_str(),
        "cur" | "prev" | "out" | "o" | "p" | "probs" | "hops"
    ) || ["prob", "vip", "score", "hop"]
        .iter()
        .any(|k| name.contains(k))
}

/// True for identifiers, field paths, numeric literals — values assumed
/// already clamped at their own definition site.
fn is_simple_expr(rhs: &str) -> bool {
    !rhs.is_empty()
        && rhs
            .chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':'))
}

fn applies_l6(path: &str) -> bool {
    // Sanctioned wall-clock homes: the telemetry crate (whose
    // `clock_ns()` is the process-wide monotonic anchor), the bench
    // harness (measures wall time by trade), and the DES — its clock is
    // *virtual*, but its tests compare against wall time.
    !(path.starts_with("crates/telemetry/src")
        || path.starts_with("crates/bench/")
        || path == "crates/comm/src/des.rs")
}

/// L6: no raw `Instant::now()` outside the sanctioned clock sites.
///
/// Library code that wants wall-clock timestamps must go through
/// `spp_telemetry::clock_ns()` (or a span/histogram timer built on it)
/// so every recorded time shares one monotonic anchor and the disabled
/// path stays free.
fn check_l6(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows.contains("l6-raw-instant") {
            continue;
        }
        let t = &line.cleaned;
        for p in token_positions(t, "Instant::now") {
            if t[p + "Instant::now".len()..].starts_with('(') {
                findings.push(Finding {
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "l6-raw-instant".to_string(),
                    message: "raw Instant::now(); use spp_telemetry::clock_ns() \
                              (one monotonic clock per process, free when \
                              telemetry is disabled) or a span/histogram timer"
                        .to_string(),
                });
            }
        }
    }
}

fn applies_l7(path: &str) -> bool {
    // spp-sync owns the raw atomics (it wraps them); spp-check needs
    // them for the scheduler's own state and the mirrored cells the
    // wrappers report into — instrumenting the instrumentation would
    // recurse.
    !(path.starts_with("crates/sync/src") || path.starts_with("crates/check/src"))
}

/// L7: no raw `std::sync::atomic` / memory-ordering tokens outside
/// `spp-sync`.
///
/// Library code that wants an atomic must use the `spp_sync` wrappers
/// (named-ordering methods, model-checkable under
/// `cargo xtask check-interleavings`). Only the five memory orderings
/// are matched — `cmp::Ordering::Less` and friends stay legal.
fn check_l7(file: &SourceFile, findings: &mut Vec<Finding>) {
    const ORDERINGS: [&str; 5] = [
        "Ordering::Relaxed",
        "Ordering::Acquire",
        "Ordering::Release",
        "Ordering::AcqRel",
        "Ordering::SeqCst",
    ];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows.contains("l7-raw-atomics") {
            continue;
        }
        let t = &line.cleaned;
        let mut hits: Vec<&str> = Vec::new();
        if !token_positions(t, "sync::atomic").is_empty() {
            hits.push("sync::atomic");
        }
        for ord in ORDERINGS {
            if !token_positions(t, ord).is_empty() {
                hits.push(ord);
            }
        }
        for h in hits {
            findings.push(Finding {
                path: file.rel_path.clone(),
                line: idx + 1,
                rule: "l7-raw-atomics".to_string(),
                message: format!(
                    "`{h}` outside spp-sync; use the spp_sync wrapper types \
                     (named-ordering methods, model-checked by \
                     `cargo xtask check-interleavings`)"
                ),
            });
        }
    }
}

/// Byte offsets where a `<ident>_relaxed(` *call* occurs on a cleaned
/// line — definition sites (`fn load_relaxed(`) are excluded.
fn relaxed_call_positions(t: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = t[from..].find("_relaxed(") {
        let at = from + p;
        from = at + "_relaxed(".len();
        // Expand left over the identifier to find the token start.
        let start = t[..at]
            .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
            .map_or(0, |q| q + 1);
        // `fn <name>_relaxed(` declares the wrapper surface, it does not
        // use it.
        if t[..start].trim_end().ends_with("fn") {
            continue;
        }
        out.push(start);
    }
    out
}

/// L8: every `*_relaxed(` call site carries a same-line
/// `// spp-sync: relaxed(<reason>)` annotation with a non-empty reason —
/// and, in the other direction, every such annotation still justifies a
/// live relaxed call (a note orphaned by an edit is flagged as stale).
///
/// Relaxed is the one ordering whose correctness argument lives entirely
/// outside the type system; the annotation forces that argument to be
/// written down where the next reader (and the lint report) can see it.
fn check_l8(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows.contains("l8-relaxed-note") {
            continue;
        }
        let annotated = line.relaxed_note.as_ref().is_some_and(|r| !r.is_empty());
        if relaxed_call_positions(&line.cleaned).is_empty() {
            // Stale note: the call the annotation justified was removed or
            // renamed but the comment survived the edit. Only code lines
            // count — a pure-comment line mentioning the grammar (docs,
            // commented-out code) is not an annotation site.
            if annotated && !line.cleaned.trim().is_empty() {
                findings.push(Finding {
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "l8-relaxed-note".to_string(),
                    message: "stale `// spp-sync: relaxed(..)` annotation: no \
                              `*_relaxed(` call remains on this line; remove \
                              the note or restore the call it justified"
                        .to_string(),
                });
            }
            continue;
        }
        if !annotated {
            findings.push(Finding {
                path: file.rel_path.clone(),
                line: idx + 1,
                rule: "l8-relaxed-note".to_string(),
                message: "relaxed-ordering call site without a same-line \
                          `// spp-sync: relaxed(<reason>)` annotation; state \
                          why the weakest ordering is sound here"
                    .to_string(),
            });
        }
    }
}

/// Collects the annotated `*_relaxed(` call sites of `file` for the
/// lint report's relaxed-ordering inventory.
pub fn relaxed_sites(file: &SourceFile) -> Vec<RelaxedSite> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || relaxed_call_positions(&line.cleaned).is_empty() {
            continue;
        }
        if let Some(reason) = line.relaxed_note.as_ref().filter(|r| !r.is_empty()) {
            out.push(RelaxedSite {
                path: file.rel_path.clone(),
                line: idx + 1,
                reason: reason.clone(),
            });
        }
    }
    out
}

/// Runs every applicable rule over `file`, including malformed-pragma
/// diagnostics.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (line, msg) in &file.bad_pragmas {
        findings.push(Finding {
            path: file.rel_path.clone(),
            line: *line,
            rule: "pragma".to_string(),
            message: msg.clone(),
        });
    }
    let path = file.rel_path.as_str();
    if applies_l1(path) {
        check_l1(file, &mut findings);
    }
    if applies_l2(path) {
        check_l2(file, &mut findings);
    }
    if applies_l3(path) {
        check_l3(file, &mut findings);
    }
    if applies_l4(path) {
        check_l4(file, &mut findings);
    }
    if applies_l5(path) {
        check_l5(file, &mut findings);
    }
    if applies_l6(path) {
        check_l6(file, &mut findings);
    }
    if applies_l7(path) {
        check_l7(file, &mut findings);
    }
    check_l8(file, &mut findings);
    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        check_file(&scan_source(path, src))
    }

    fn rules_of(f: &[Finding]) -> Vec<&str> {
        f.iter().map(|x| x.rule.as_str()).collect()
    }

    // ---- L1 ----

    #[test]
    fn l1_flags_unwrap_expect_panics() {
        let src = "fn f() {\n  let x = y.unwrap();\n  let z = w.expect(\"m\");\n  panic!(\"boom\");\n  unreachable!();\n}";
        let f = lint("crates/core/src/cache.rs", src);
        assert_eq!(rules_of(&f), vec!["l1-no-panic"; 4], "findings: {f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn l1_ignores_unwrap_or_family_and_comments() {
        let src = "fn f() {\n  a.unwrap_or(0);\n  a.unwrap_or_else(|| 1);\n  a.unwrap_or_default();\n  b.expect_err(\"x\");\n  // c.unwrap()\n}";
        assert!(lint("crates/core/src/cache.rs", src).is_empty());
    }

    #[test]
    fn l1_skips_cfg_test_modules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); panic!(); }\n}";
        assert!(lint("crates/core/src/cache.rs", src).is_empty());
    }

    #[test]
    fn l1_pragma_suppresses_with_justification() {
        let src = "fn f() {\n  x.unwrap(); // spp-lint: allow(l1-no-panic): len checked above\n}";
        assert!(lint("crates/core/src/cache.rs", src).is_empty());
    }

    // ---- L2 ----

    #[test]
    fn l2_flags_raw_csr_indexing() {
        let src = "fn f(g: &CsrGraph, v: usize) -> &[u32] {\n  &g.col()[g.row_ptr()[v]..g.row_ptr()[v + 1]]\n}";
        let f = lint("crates/sampler/src/sample.rs", src);
        assert!(f.iter().all(|x| x.rule == "l2-csr-index"));
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn l2_allows_inside_csr_module_and_other_crates() {
        let src = "fn f(&self) { self.row_ptr[0]; }";
        assert!(lint("crates/graph/src/csr.rs", src).is_empty());
        assert!(lint("crates/comm/src/net.rs", src).is_empty());
    }

    // ---- L3 ----

    #[test]
    fn l3_flags_hash_iteration_in_ordering_sensitive_file() {
        let src = "use std::collections::HashMap;\nfn rank() {\n  let scores: HashMap<u32, f64> = HashMap::new();\n  for (v, s) in scores.iter() { body(v, s); }\n}";
        let f = lint("crates/core/src/policies.rs", src);
        assert_eq!(rules_of(&f), vec!["l3-unordered-iter"], "{f:?}");
    }

    #[test]
    fn l3_allows_membership_lookups() {
        let src = "use std::collections::HashMap;\nstruct C { slots: HashMap<u32, u32> }\nimpl C {\n  fn slot_of(&self, v: u32) -> Option<u32> { self.slots.get(&v).copied() }\n}";
        assert!(lint("crates/core/src/cache.rs", src).is_empty());
    }

    #[test]
    fn l3_not_applied_outside_sensitive_files() {
        let src = "use std::collections::HashMap;\nfn f() {\n  let m: HashMap<u32, u32> = HashMap::new();\n  for x in m.iter() { g(x); }\n}";
        assert!(lint("crates/comm/src/net.rs", src).is_empty());
    }

    #[test]
    fn l3_flags_for_loop_over_hash() {
        let src = "use std::collections::HashSet;\nfn f() {\n  let seen: HashSet<u32> = HashSet::new();\n  for v in &seen { g(v); }\n}";
        let f = lint("crates/partition/src/simple.rs", src);
        assert_eq!(rules_of(&f), vec!["l3-unordered-iter"], "{f:?}");
    }

    // ---- L4 ----

    #[test]
    fn l4_flags_spawn_and_unbounded_channels() {
        let src = "fn f() {\n  std::thread::spawn(|| {});\n  let (tx, rx) = std::sync::mpsc::channel();\n}";
        let f = lint("crates/comm/src/net.rs", src);
        assert_eq!(rules_of(&f), vec!["l4-unbounded"; 2], "{f:?}");
    }

    #[test]
    fn l4_allows_runtime_and_bounded() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }";
        assert!(lint("crates/runtime/src/pipeline.rs", spawn).is_empty());
        let bounded = "fn f() { let (tx, rx) = std::sync::mpsc::sync_channel(4); }";
        assert!(lint("crates/comm/src/net.rs", bounded).is_empty());
    }

    #[test]
    fn l4_flags_adhoc_scoped_fan_out_outside_sanctioned_crates() {
        let src = "fn f() {\n  crossbeam::thread::scope(|s| { s.spawn(move |_| work()); });\n}";
        let f = lint("crates/core/src/vip.rs", src);
        assert_eq!(rules_of(&f), vec!["l4-unbounded"], "{f:?}");
    }

    #[test]
    fn l4_allows_sanctioned_concurrency_homes() {
        let scoped = "fn f() {\n  crossbeam::thread::scope(|s| { s.spawn(move |_| work()); });\n}";
        assert!(lint("crates/comm/src/alltoall.rs", scoped).is_empty());
        let spawn = "fn f() { std::thread::spawn(|| {}); }";
        assert!(lint("crates/pool/src/lib.rs", spawn).is_empty());
        assert!(lint("crates/runtime/src/pipeline.rs", spawn).is_empty());
    }

    // ---- L5 ----

    #[test]
    fn l5_flags_unclamped_computed_store() {
        let src =
            "fn f(cur: &mut [f64], u: usize, log_miss: f64) {\n  cur[u] = 1.0 - log_miss.exp();\n}";
        let f = lint("crates/core/src/vip.rs", src);
        assert_eq!(rules_of(&f), vec!["l5-prob-clamp"], "{f:?}");
    }

    #[test]
    fn l5_allows_clamped_simple_and_compound() {
        let src = "fn f(cur: &mut [f64], o: &mut f64, u: usize, p: f64, lm: f64) {\n  cur[u] = clamp01(1.0 - lm.exp());\n  cur[u] = p;\n  cur[u] = 0.0;\n  *o = clamp01(1.0 - lm.exp());\n  lm += x;\n  let y = a - b;\n}";
        assert!(lint("crates/core/src/vip.rs", src).is_empty());
    }

    #[test]
    fn l5_flags_deref_store() {
        let src = "fn f(o: &mut f64, lm: f64) {\n  *o = 1.0 - lm.exp();\n}";
        let f = lint("crates/core/src/vip.rs", src);
        assert_eq!(rules_of(&f), vec!["l5-prob-clamp"], "{f:?}");
    }

    #[test]
    fn l5_ignores_non_probability_buffers() {
        let src = "fn f(loads: &mut [u64], assignment: &mut [u32], c: usize, w: u64, dst: u32) {\n  loads[c] = loads[c].max(w);\n  assignment[c] = dst as u32;\n}";
        assert!(lint("crates/core/src/vip_partition.rs", src).is_empty());
    }

    #[test]
    fn l5_not_applied_outside_vip_files() {
        let src = "fn f(c: &mut [f64], u: usize, lm: f64) { c[u] = 1.0 - lm.exp(); }";
        assert!(lint("crates/core/src/cache.rs", src).is_empty());
    }

    // ---- L6 ----

    #[test]
    fn l6_flags_raw_instant_in_library_code() {
        let src = "fn f() {\n  let t0 = std::time::Instant::now();\n  let t1 = Instant::now();\n}";
        let f = lint("crates/core/src/vip.rs", src);
        assert_eq!(rules_of(&f), vec!["l6-raw-instant"; 2], "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn l6_allows_sanctioned_clock_homes() {
        let src = "fn f() { let t0 = std::time::Instant::now(); }";
        assert!(lint("crates/telemetry/src/span.rs", src).is_empty());
        assert!(lint("crates/bench/src/report.rs", src).is_empty());
        assert!(lint("crates/comm/src/des.rs", src).is_empty());
    }

    #[test]
    fn l6_ignores_type_mentions_and_pragma() {
        let src = "use std::time::Instant;\nfn f(anchor: Instant) {\n  let t = Instant::now(); // spp-lint: allow(l6-raw-instant): calibration loop predates the telemetry anchor\n}";
        assert!(lint("crates/core/src/vip.rs", src).is_empty());
    }

    // ---- L7 ----

    #[test]
    fn l7_flags_raw_atomics_and_memory_orderings() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(x: &AtomicU64) {\n  x.load(Ordering::Relaxed);\n  x.store(1, Ordering::SeqCst);\n}";
        let f = lint("crates/serve/src/overlay.rs", src);
        assert_eq!(rules_of(&f), vec!["l7-raw-atomics"; 3], "{f:?}");
    }

    #[test]
    fn l7_allows_sync_and_check_crates_and_cmp_ordering() {
        let src = "use std::sync::atomic::Ordering;\nfn f() { g(Ordering::AcqRel); }";
        assert!(lint("crates/sync/src/atomic.rs", src).is_empty());
        assert!(lint("crates/check/src/runtime.rs", src).is_empty());
        let cmp = "fn f(a: u32, b: u32) -> std::cmp::Ordering { if a < b { Ordering::Less } else { Ordering::Greater } }";
        assert!(lint("crates/core/src/vip.rs", cmp).is_empty());
    }

    // ---- L8 ----

    #[test]
    fn l8_flags_unannotated_relaxed_call() {
        let src = "fn f(x: &AtomicU64) {\n  x.fetch_add_relaxed(1);\n}";
        let f = lint("crates/serve/src/overlay.rs", src);
        assert_eq!(rules_of(&f), vec!["l8-relaxed-note"], "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn l8_accepts_annotated_call_and_skips_definitions() {
        let src = "fn f(x: &AtomicU64) {\n  x.load_relaxed(); // spp-sync: relaxed(monotonic tally)\n}\npub fn load_relaxed(&self) -> u64 { 0 }";
        assert!(lint("crates/serve/src/overlay.rs", src).is_empty());
    }

    #[test]
    fn l8_flags_stale_note_on_code_line_without_relaxed_call() {
        // The call was rewritten to an acquire load but the relaxed note
        // survived the edit — the justification no longer matches the code.
        let src =
            "fn f(x: &AtomicU64) {\n  x.load_acquire(); // spp-sync: relaxed(monotonic tally)\n}";
        let f = lint("crates/serve/src/overlay.rs", src);
        assert_eq!(rules_of(&f), vec!["l8-relaxed-note"], "{f:?}");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("stale"), "{}", f[0].message);
    }

    #[test]
    fn l8_stale_check_skips_pure_comment_lines_and_tests() {
        // Doc prose mentioning the grammar is not an annotation site.
        let doc = "// carries a `// spp-sync: relaxed(reason)` note\nfn f() {}";
        assert!(lint("crates/serve/src/overlay.rs", doc).is_empty());
        let test = "#[cfg(test)]\nmod tests {\n  fn t(x: &AtomicU64) {\n    x.load_acquire(); // spp-sync: relaxed(stale but in test)\n  }\n}";
        assert!(lint("crates/serve/src/overlay.rs", test).is_empty());
    }

    #[test]
    fn l8_rejects_empty_reason() {
        let src = "fn f(x: &AtomicU64) {\n  x.load_relaxed(); // spp-sync: relaxed()\n}";
        let f = lint("crates/serve/src/overlay.rs", src);
        assert_eq!(rules_of(&f), vec!["l8-relaxed-note"], "{f:?}");
    }

    #[test]
    fn relaxed_sites_inventory_lists_annotated_calls() {
        let src = "fn f(x: &AtomicU64) {\n  x.load_relaxed(); // spp-sync: relaxed(monotonic tally)\n  x.store_relaxed(0);\n}";
        let file = scan_source("crates/serve/src/overlay.rs", src);
        let sites = relaxed_sites(&file);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].line, 2);
        assert_eq!(sites[0].reason, "monotonic tally");
    }

    // ---- engine ----

    #[test]
    fn malformed_pragma_reported() {
        let src = "fn f() { x.unwrap() } // spp-lint: allow(l1-no-panic)";
        let f = lint("crates/core/src/cache.rs", src);
        assert!(f.iter().any(|x| x.rule == "pragma"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "l1-no-panic"), "{f:?}");
    }

    #[test]
    fn findings_sorted_and_stable() {
        let src = "fn f() {\n  b.unwrap();\n  a.unwrap();\n}";
        let f = lint("crates/core/src/cache.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }
}
