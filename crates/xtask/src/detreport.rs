//! Rendering and summarization for `cargo xtask audit-determinism`.
//!
//! The `--json` document is the committed baseline format
//! (`results/determinism_baseline.json`): det-root inventory with
//! reachable-set size and call-graph depth, the escape-site inventory,
//! cold boundaries, findings, and the `unannotated_escapes` counter.
//! Structurally the mirror of [`crate::hotreport`] with the det key
//! names, so [`crate::baseline`] can diff both with one key extractor.

use crate::callgraph::{CallGraph, Reached};
use crate::detrules::DetReport;
use crate::hotreport::{json_escape, RootSummary, StopSite};
use crate::items::{FileItems, DET_RULE_IDS};
use std::collections::BTreeMap;

/// Everything the determinism audit produces; rendered to text or JSON.
#[derive(Debug)]
pub struct DetOutput {
    pub roots: Vec<RootSummary>,
    pub stops: Vec<StopSite>,
    pub reachable_functions: usize,
    pub report: DetReport,
    pub files_scanned: usize,
}

/// Summarizes the reachability pass per det root. `root_nodes` is the
/// set traversal actually started from (a subset of the declared roots
/// when `--root` filters), so partial views report only what they
/// audited.
pub fn summarize(
    files: &[FileItems],
    graph: &CallGraph,
    root_nodes: &[usize],
    reach: &[Reached],
    files_scanned: usize,
    report: DetReport,
) -> DetOutput {
    let mut per_root: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for r in reach {
        let e = per_root.entry(r.root.as_str()).or_insert((0, 0));
        e.0 += 1;
        e.1 = e.1.max(r.depth);
    }
    let mut roots = Vec::new();
    for &ri in root_nodes {
        let n = &graph.nodes[ri];
        let name = n.item.det_root.clone().unwrap_or_default();
        let (reachable, max_depth) = per_root.get(name.as_str()).copied().unwrap_or((0, 0));
        roots.push(RootSummary {
            name,
            func: n.item.qual.clone(),
            path: files[n.file].rel_path.clone(),
            line: n.item.line,
            reachable,
            max_depth,
        });
    }
    roots.sort();
    let mut stops: Vec<StopSite> = reach
        .iter()
        .filter_map(|r| {
            let n = &graph.nodes[r.node];
            n.item.det_stop.as_ref().map(|reason| StopSite {
                path: files[n.file].rel_path.clone(),
                func: n.item.qual.clone(),
                reason: reason.clone(),
            })
        })
        .collect();
    stops.sort();
    stops.dedup();
    DetOutput {
        roots,
        stops,
        reachable_functions: reach.len(),
        report,
        files_scanned,
    }
}

/// Human-readable report.
pub fn render_text(out: &DetOutput) -> String {
    let mut s = String::new();
    for r in &out.roots {
        s.push_str(&format!(
            "root {} = {} ({}:{}): {} reachable fn(s), max depth {}\n",
            r.name, r.func, r.path, r.line, r.reachable, r.max_depth
        ));
    }
    for f in &out.report.findings {
        let ctx = if f.func.is_empty() {
            String::new()
        } else {
            format!(" in `{}` (via {})", f.func, f.root)
        };
        s.push_str(&format!(
            "{}:{}: [{}]{} {}\n",
            f.path, f.line, f.rule, ctx, f.message
        ));
    }
    for e in &out.report.escapes {
        s.push_str(&format!(
            "{}:{}: escape [{}] {}\n",
            e.path, e.line, e.rules, e.reason
        ));
    }
    for st in &out.stops {
        s.push_str(&format!("stop {} ({}): {}\n", st.func, st.path, st.reason));
    }
    s.push_str(&format!(
        "audit-determinism: {} root(s), {} reachable fn(s), {} finding(s), \
         {} escape(s), {} stop(s) in {} file(s) scanned\n",
        out.roots.len(),
        out.reachable_functions,
        out.report.findings.len(),
        out.report.escapes.len(),
        out.stops.len(),
        out.files_scanned
    ));
    s
}

/// Stable machine-readable JSON document (the baseline format).
pub fn render_json(out: &DetOutput) -> String {
    let root_items: Vec<String> = out
        .roots
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"reachable\": {}, \"max_depth\": {}}}",
                json_escape(&r.name),
                json_escape(&r.func),
                json_escape(&r.path),
                r.line,
                r.reachable,
                r.max_depth
            )
        })
        .collect();
    let mut counts: BTreeMap<&str, usize> = DET_RULE_IDS.iter().map(|&r| (r, 0)).collect();
    counts.insert("det-annotation", 0);
    for f in &out.report.findings {
        *counts.entry(f.rule.as_str()).or_insert(0) += 1;
    }
    let finding_items: Vec<String> = out
        .report
        .findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"fn\": \"{}\", \
                 \"root\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&f.rule),
                json_escape(&f.path),
                f.line,
                json_escape(&f.func),
                json_escape(&f.root),
                json_escape(&f.message)
            )
        })
        .collect();
    let count_items: Vec<String> = counts
        .iter()
        .map(|(r, n)| format!("    \"{}\": {}", json_escape(r), n))
        .collect();
    let escape_items: Vec<String> = out
        .report
        .escapes
        .iter()
        .map(|e| {
            format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rules\": \"{}\", \"reason\": \"{}\"}}",
                json_escape(&e.path),
                e.line,
                json_escape(&e.rules),
                json_escape(&e.reason)
            )
        })
        .collect();
    let stop_items: Vec<String> = out
        .stops
        .iter()
        .map(|s| {
            format!(
                "    {{\"file\": \"{}\", \"fn\": \"{}\", \"reason\": \"{}\"}}",
                json_escape(&s.path),
                json_escape(&s.func),
                json_escape(&s.reason)
            )
        })
        .collect();
    format!(
        "{{\n  \"det_roots\": [\n{}\n  ],\n  \"det_root_count\": {},\n  \
         \"reachable_functions\": {},\n  \"findings\": [\n{}\n  ],\n  \
         \"counts\": {{\n{}\n  }},\n  \"escapes\": [\n{}\n  ],\n  \
         \"stops\": [\n{}\n  ],\n  \"unannotated_escapes\": {},\n  \
         \"files_scanned\": {}\n}}\n",
        root_items.join(",\n"),
        out.roots.len(),
        out.reachable_functions,
        finding_items.join(",\n"),
        count_items.join(",\n"),
        escape_items.join(",\n"),
        stop_items.join(",\n"),
        out.report.findings.len(),
        out.files_scanned
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotrules::{EscapeSite, HotFinding};

    fn sample() -> DetOutput {
        DetOutput {
            roots: vec![RootSummary {
                name: "core.vip_scores".to_string(),
                func: "VipPolicy::scores".to_string(),
                path: "crates/core/src/vip.rs".to_string(),
                line: 250,
                reachable: 12,
                max_depth: 4,
            }],
            stops: vec![StopSite {
                path: "crates/telemetry/src/span.rs".to_string(),
                func: "register_tid".to_string(),
                reason: "trace-only thread registry".to_string(),
            }],
            reachable_functions: 12,
            report: DetReport {
                findings: vec![HotFinding {
                    path: "crates/a/src/lib.rs".to_string(),
                    line: 4,
                    rule: "d1-unordered-iter".to_string(),
                    func: "deep".to_string(),
                    root: "core.vip_scores".to_string(),
                    message: "`.drain(` over hash map".to_string(),
                }],
                escapes: vec![EscapeSite {
                    path: "crates/pool/src/lib.rs".to_string(),
                    line: 140,
                    rules: "d3-ambient-read".to_string(),
                    reason: "scheduling knob only".to_string(),
                }],
            },
            files_scanned: 5,
        }
    }

    #[test]
    fn text_has_roots_findings_and_summary() {
        let t = render_text(&sample());
        assert!(t.contains("root core.vip_scores = VipPolicy::scores"));
        assert!(t.contains("crates/a/src/lib.rs:4: [d1-unordered-iter] in `deep`"));
        assert!(t.contains("escape [d3-ambient-read] scheduling knob only"));
        assert!(t.contains("stop register_tid"));
        assert!(t.contains("audit-determinism: 1 root(s), 12 reachable fn(s), 1 finding(s)"));
    }

    #[test]
    fn json_counts_and_counters() {
        let j = render_json(&sample());
        assert!(j.contains("\"det_root_count\": 1"));
        assert!(j.contains("\"reachable_functions\": 12"));
        assert!(j.contains("\"d1-unordered-iter\": 1"));
        assert!(j.contains("\"d5-float-order\": 0"));
        assert!(j.contains("\"det-annotation\": 0"));
        assert!(j.contains("\"unannotated_escapes\": 1"));
        assert!(crate::json::parse(&j).is_ok());
    }
}
