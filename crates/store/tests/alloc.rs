//! Pins the paged-gather hot-path contract: after warmup, reading rows
//! through any backend performs zero heap allocations per read (the
//! `spp-hot(store.read_row.*)` roots). A counting global allocator
//! makes the claim a hard test instead of a code-review convention.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use spp_graph::{FeatureMatrix, Permutation, QuantScheme};
use spp_store::{FeatureStore, InRamStore, MmapStore, PermutedStore, StoreBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counter is a
// side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn row_reads_do_not_allocate_after_warmup() {
    let rows = 300usize;
    let dim = 24usize;
    let mut feats = FeatureMatrix::zeros(rows, dim);
    for v in 0..rows {
        for j in 0..dim {
            feats.row_mut(v as u32)[j] = ((v + j) % 1000) as f32;
        }
    }
    let dir = std::env::temp_dir().join(format!("spp_store_alloc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Exercise every scheme; i8 has the most complex decode path.
    for scheme in [QuantScheme::F32, QuantScheme::F16, QuantScheme::I8] {
        StoreBuilder::new(scheme)
            .page_bytes(1024)
            .build_from_matrix(&dir, &feats, None)
            .unwrap();
        let inram = InRamStore::open(&dir).unwrap();
        let mmap = MmapStore::open(&dir).unwrap();
        let perm = Permutation::identity(rows);
        let permuted = PermutedStore::new(&mmap, &perm);
        let stores: [(&str, &dyn FeatureStore); 3] =
            [("inram", &inram), ("mmap", &mmap), ("permuted", &permuted)];
        let mut out = vec![0.0f32; dim];
        for (name, store) in stores {
            // Warmup: first read may size thread-local scratch.
            for v in 0..rows as u32 {
                store.read_row_into(v, &mut out);
            }
            let before = allocs();
            for i in 0..4 * rows as u32 {
                store.read_row_into(i % rows as u32, &mut out);
            }
            let after = allocs();
            assert_eq!(
                after - before,
                0,
                "{name}/{scheme:?}: row reads allocated after warmup"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
