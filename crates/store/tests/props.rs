//! Property tests for the out-of-core store: backend bit-identity and
//! streaming-vs-in-RAM CSR builder equivalence.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use spp_graph::generate::{citation_edges, citation_graph, GeneratorConfig};
use spp_graph::{CsrGraph, FeatureMatrix, QuantScheme};
use spp_store::{FeatureStore, InRamStore, MmapStore, StoreBuilder, StreamingCsrBuilder};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "spp_store_props_{}_{}_{}",
        name,
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn feature_fixture(rows: usize, dim: usize) -> FeatureMatrix {
    let mut f = FeatureMatrix::zeros(rows, dim);
    for v in 0..rows {
        for j in 0..dim {
            // Below 2048 so the f16 tier is exact; varied enough that
            // every (row, scheme) pair exercises distinct bit patterns.
            f.row_mut(v as u32)[j] = ((v * 31 + j * 7) % 1997) as f32 + 0.25;
        }
    }
    f
}

/// Streams a generator's edge list through the spill-and-merge builder.
fn stream_build(cfg: &GeneratorConfig, chunk_edges: usize, dir: &Path) -> CsrGraph {
    let stream = cfg.edges();
    let mut b = StreamingCsrBuilder::new(stream.num_vertices(), dir).chunk_edges(chunk_edges);
    for (src, dst) in stream {
        b.add_edge(src, dst).unwrap();
    }
    b.finish().unwrap()
}

fn families(n: usize, e: usize) -> Vec<GeneratorConfig> {
    vec![
        GeneratorConfig::rmat(n, e),
        GeneratorConfig::erdos_renyi(n, e),
        GeneratorConfig::planted_partition(n, e, 4, 0.8),
        GeneratorConfig::chung_lu(n, e, 2.5),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The streaming builder's spill/merge pipeline is invisible: for
    /// every generator family, seed, and chunk size (including chunks
    /// far smaller than the edge count, forcing many spill runs), the
    /// graph equals the in-RAM `GraphBuilder` compaction bit for bit.
    #[test]
    fn streaming_csr_matches_in_ram_builder(
        seed in 0u64..1000,
        chunk_ix in 0usize..4,
    ) {
        let chunk = [7usize, 64, 1009, 1 << 20][chunk_ix];
        for cfg in families(300, 1200) {
            let cfg = cfg.seed(seed);
            let in_ram = cfg.build();
            let streamed = stream_build(&cfg, chunk, &tmp("csr"));
            prop_assert_eq!(&in_ram, &streamed, "chunk {}", chunk);
        }
    }

    /// Mmap and InRam backends decode identical bits for every scheme:
    /// the page file is the single source of truth, regardless of
    /// whether it is resident or read through the file.
    #[test]
    fn mmap_and_inram_backends_are_bit_identical(
        rows in 1usize..200,
        dim in 1usize..17,
        scheme_ix in 0usize..3,
    ) {
        let scheme = [QuantScheme::F32, QuantScheme::F16, QuantScheme::I8][scheme_ix];
        let feats = feature_fixture(rows, dim);
        let dir = tmp("backend");
        StoreBuilder::new(scheme)
            .page_bytes(512)
            .build_from_matrix(&dir, &feats, None)
            .unwrap();
        let inram = InRamStore::open(&dir).unwrap();
        let mmap = MmapStore::open(&dir).unwrap();
        let mut a = vec![0.0f32; dim];
        let mut b = vec![0.0f32; dim];
        for v in 0..rows as u32 {
            inram.read_row_into(v, &mut a);
            mmap.read_row_into(v, &mut b);
            prop_assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "row {} under {:?}", v, scheme
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// `citation_graph` (the io_bench workload) streams bit-identically
/// too — its edge iterator replicates the builder-path RNG draws.
#[test]
fn citation_graph_streams_bit_identically() {
    let (n, e) = (500, 2000);
    for seed in [0u64, 7, 42] {
        let in_ram = citation_graph(n, e, 8, 0.7, 1.4, seed);
        let dir = tmp("cite");
        let mut b = StreamingCsrBuilder::new(n, &dir).chunk_edges(977);
        for (src, dst) in citation_edges(n, e, 8, 0.7, 1.4, seed) {
            b.add_edge(src, dst).unwrap();
        }
        let streamed = b.finish().unwrap();
        assert_eq!(in_ram, streamed, "seed {seed}");
    }
}

/// A graph too big for any single spill run builds correctly and the
/// result matches the reference compaction (multi-run k-way merge).
#[test]
fn many_spill_runs_merge_correctly() {
    let cfg = GeneratorConfig::rmat(2000, 12_000).seed(3);
    let in_ram = cfg.build();
    // ~24k directed inserts over 1k-edge chunks: ≥ 20 run files.
    let streamed = stream_build(&cfg, 1000, &tmp("runs"));
    assert_eq!(in_ram, streamed);
}
