//! Out-of-core backend: rows fetched from `pages.bin` with positioned
//! reads.
//!
//! The container vendors no mmap shim, so "Mmap" here means the same
//! access pattern an mmap would produce — on-demand page-granular
//! fetches from a file that is never resident as a whole — implemented
//! with `FileExt::read_exact_at` (which takes `&self`, so concurrent
//! pool workers read without locks). Residency is modeled by the
//! deterministic epoch tracker instead of the OS page cache (see
//! [`crate::tracker`] for why).
//!
//! The row scratch is thread-local and grown once per thread, so after
//! warmup a row read performs zero heap allocations — pinned by the
//! `alloc_count` integration test and the `store.read_row.mmap` hot
//! root.

use crate::format::{self, StoreMeta};
use crate::tracker::PageTracker;
use crate::{FeatureStore, StoreStats};
use spp_graph::{QuantScheme, VertexId};
use std::cell::RefCell;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::Path;

thread_local! {
    /// Per-thread encoded-row buffer, grown to `row_bytes` on first use.
    static ROW_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Paged feature rows left on disk and fetched per read.
pub struct MmapStore {
    meta: StoreMeta,
    file: File,
    tracker: PageTracker,
}

impl MmapStore {
    /// Opens a store directory (see [`crate::StoreBuilder`]) without
    /// loading the payload.
    ///
    /// # Errors
    ///
    /// Returns [`format::StoreError`] on I/O failure, a bad header, or
    /// a payload whose size disagrees with the header.
    pub fn open(dir: &Path) -> Result<Self, format::StoreError> {
        let meta = StoreMeta::load(dir)?;
        let file = File::open(StoreMeta::pages_path(dir))?;
        let len = file.metadata()?.len();
        if len != meta.payload_bytes() as u64 {
            return Err(format::StoreError::Corrupt(format!(
                "pages.bin is {len} bytes, header implies {}",
                meta.payload_bytes()
            )));
        }
        let tracker = PageTracker::new(&meta);
        Ok(Self {
            meta,
            file,
            tracker,
        })
    }

    /// Store geometry.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }
}

impl FeatureStore for MmapStore {
    fn num_rows(&self) -> usize {
        self.meta.rows
    }

    fn dim(&self) -> usize {
        self.meta.dim
    }

    fn scheme(&self) -> QuantScheme {
        self.meta.scheme
    }

    /// # Panics
    ///
    /// Panics if `v` is out of range, `out.len() != dim`, or the
    /// positioned read fails (the payload size was validated at open,
    /// so a failure here means the file changed underneath us).
    // spp-hot(store.read_row.mmap)
    fn read_row_into(&self, v: VertexId, out: &mut [f32]) {
        let v = v as usize;
        assert!(v < self.meta.rows, "row {v} out of range");
        self.tracker.record(self.meta.page_of(v));
        let row_bytes = self.meta.row_bytes();
        let off = self.meta.row_offset(v) as u64;
        ROW_SCRATCH.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.resize(row_bytes, 0);
            let read = self.file.read_exact_at(&mut buf[..row_bytes], off);
            assert!(
                read.is_ok(),
                "store payload read failed at offset {off}: {read:?}"
            );
            format::decode_row(self.meta.scheme, &buf[..row_bytes], out);
        });
    }

    fn begin_epoch(&self) {
        self.tracker.begin_epoch();
    }

    fn stats(&self) -> StoreStats {
        self.tracker.stats()
    }
}
