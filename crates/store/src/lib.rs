//! `spp-store` — out-of-core paged feature store and streaming CSR
//! builder (DESIGN.md §16).
//!
//! Every crate so far keeps graph + features in RAM (`spp_graph::Dataset`),
//! which caps experiments at ~1000×-reduced scale. This crate lifts the
//! feature matrix onto disk behind the [`FeatureStore`] trait:
//!
//! * [`InRamStore`] — pages held in one resident byte buffer (the
//!   upper-bound baseline, and the reference for bit-identity tests).
//! * [`MmapStore`] — pages read on demand from `pages.bin` via
//!   positioned reads (`read_exact_at`), with an epoch-scoped
//!   [`tracker::PageTracker`] modeling residency deterministically.
//!
//! Both backends decode through the same codecs ([`format::decode_row`]),
//! so they are bitwise-identical per scheme by construction; tests pin
//! it anyway. [`StoreBuilder`] writes stores deterministically —
//! independent of chunk size and worker count — and
//! [`StreamingCsrBuilder`] assembles multi-million-vertex CSR graphs
//! from edge streams in bounded memory (sorted spill runs + k-way
//! merge), bitwise-equal to `spp_graph::GraphBuilder`.
//!
//! Page locality is where the source paper's VIP ordering pays off
//! out-of-core: `spp_graph::PagedPermutation` reorders rows by VIP
//! score at store-build time so hot vertices share hot pages, and the
//! `io_bench` bin measures the resulting drop in pages-faulted and
//! bytes-read per epoch versus a random order at equal page size.

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub mod builder;
pub mod format;
pub mod inram;
pub mod mmap;
pub mod stream;
pub mod tracker;

pub use builder::StoreBuilder;
pub use format::{StoreError, StoreMeta};
pub use inram::InRamStore;
pub use mmap::MmapStore;
pub use stream::StreamingCsrBuilder;

use spp_graph::{FeatureMatrix, Permutation, QuantScheme, VertexId};

/// Cumulative page-touch totals for one store (see
/// [`tracker::PageTracker`]); per-epoch figures are deltas between
/// snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Row reads that touched a page (one per `read_row_into`).
    pub pages_read: u64,
    /// Page touches that missed the epoch's modeled resident set.
    pub pages_faulted: u64,
    /// Page touches served from the modeled resident set.
    pub pages_hit: u64,
    /// Bytes transferred from backing storage (`pages_faulted × page_bytes`).
    pub bytes_read: u64,
}

impl StoreStats {
    /// Component-wise `self - earlier`: the activity between two
    /// snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not a prior snapshot of the same store
    /// (any component would underflow).
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        let sub = |a: u64, b: u64| {
            assert!(b <= a, "stats snapshot order inverted");
            a - b
        };
        StoreStats {
            pages_read: sub(self.pages_read, earlier.pages_read),
            pages_faulted: sub(self.pages_faulted, earlier.pages_faulted),
            pages_hit: sub(self.pages_hit, earlier.pages_hit),
            bytes_read: sub(self.bytes_read, earlier.bytes_read),
        }
    }

    /// Component-wise sum: accumulates per-epoch deltas into a total.
    #[must_use]
    pub fn merged(&self, other: &StoreStats) -> StoreStats {
        StoreStats {
            pages_read: self.pages_read + other.pages_read,
            pages_faulted: self.pages_faulted + other.pages_faulted,
            pages_hit: self.pages_hit + other.pages_hit,
            bytes_read: self.bytes_read + other.bytes_read,
        }
    }
}

/// Random access to feature rows, independent of where the bytes live.
///
/// Implementations decode into caller buffers without allocating, so
/// batch gathers can reuse scratch (the hot-path contract pinned by the
/// `store.read_row` hot-path roots and the alloc-count test).
pub trait FeatureStore: Send + Sync {
    /// Number of feature rows.
    fn num_rows(&self) -> usize;

    /// Feature dimension.
    fn dim(&self) -> usize;

    /// Row storage scheme.
    fn scheme(&self) -> QuantScheme;

    /// Decodes row `v` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `out.len() != self.dim()`.
    fn read_row_into(&self, v: VertexId, out: &mut [f32]);

    /// Gathers `ids` into a dense matrix (row `i` = row `ids[i]`).
    fn gather(&self, ids: &[VertexId]) -> FeatureMatrix {
        let mut m = FeatureMatrix::zeros(ids.len(), self.dim());
        for (i, &v) in ids.iter().enumerate() {
            self.read_row_into(v, m.row_mut(i as VertexId));
        }
        m
    }

    /// Starts a new access epoch (drops the modeled resident set).
    /// No-op for backends without residency tracking.
    fn begin_epoch(&self) {}

    /// Cumulative page-touch totals. All-zero for backends without
    /// residency tracking.
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }
}

/// A plain in-RAM matrix is the degenerate store: full-precision rows,
/// no paging, no tracking. This is what lets store-threaded code paths
/// (`PartitionedFeatureStore::build_from_store`, trainer gathers) stay
/// bit-identical to the historical `&FeatureMatrix` paths.
impl FeatureStore for FeatureMatrix {
    fn num_rows(&self) -> usize {
        FeatureMatrix::num_rows(self)
    }

    fn dim(&self) -> usize {
        FeatureMatrix::dim(self)
    }

    fn scheme(&self) -> QuantScheme {
        QuantScheme::F32
    }

    fn read_row_into(&self, v: VertexId, out: &mut [f32]) {
        out.copy_from_slice(self.row(v));
    }
}

/// View of a store whose rows were written in a permuted order,
/// re-addressed by the caller's original vertex ids.
///
/// A store built with a reordering permutation holds original row
/// `perm.to_old(s)` at physical slot `s`. Wrapping it in
/// `PermutedStore::new(store, perm)` makes `read_row_into(v)` fetch
/// physical slot `perm.to_new(v)`, so
/// callers keep using original ids while the on-disk layout carries the
/// locality of the permuted order.
pub struct PermutedStore<'a> {
    inner: &'a dyn FeatureStore,
    perm: &'a Permutation,
}

impl<'a> PermutedStore<'a> {
    /// Wraps `inner` (built in `perm`'s new-id order) for access by
    /// old ids.
    ///
    /// # Panics
    ///
    /// Panics if the permutation length differs from the store's rows.
    pub fn new(inner: &'a dyn FeatureStore, perm: &'a Permutation) -> Self {
        assert_eq!(
            perm.len(),
            inner.num_rows(),
            "permutation length must match store rows"
        );
        Self { inner, perm }
    }
}

impl FeatureStore for PermutedStore<'_> {
    fn num_rows(&self) -> usize {
        self.inner.num_rows()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn scheme(&self) -> QuantScheme {
        self.inner.scheme()
    }

    // spp-hot(store.read_row.permuted)
    fn read_row_into(&self, v: VertexId, out: &mut [f32]) {
        self.inner.read_row_into(self.perm.to_new(v), out);
    }

    fn begin_epoch(&self) {
        self.inner.begin_epoch();
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix_is_a_store() {
        let m = FeatureMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2);
        let s: &dyn FeatureStore = &m;
        assert_eq!(s.num_rows(), 3);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.scheme(), QuantScheme::F32);
        let mut out = [0.0f32; 2];
        s.read_row_into(1, &mut out);
        assert_eq!(out, [3.0, 4.0]);
        let g = s.gather(&[2, 0]);
        assert_eq!(g.as_flat(), &[5.0, 6.0, 1.0, 2.0]);
        assert_eq!(s.stats(), StoreStats::default());
    }

    #[test]
    fn permuted_store_round_trips_original_ids() {
        // Original rows 0..4; store laid out in reversed order.
        let orig = FeatureMatrix::from_flat((0..8).map(|v| v as f32).collect(), 2);
        let perm = Permutation::from_order(vec![3, 2, 1, 0]); // new s holds old order[s]
        let mut laid_out = FeatureMatrix::zeros(4, 2);
        for s in 0..4u32 {
            laid_out
                .row_mut(s)
                .copy_from_slice(orig.row(perm.to_old(s)));
        }
        let view = PermutedStore::new(&laid_out, &perm);
        for v in 0..4u32 {
            let mut out = [0.0f32; 2];
            view.read_row_into(v, &mut out);
            assert_eq!(out, orig.row(v), "row {v}");
        }
    }

    #[test]
    fn stats_since_subtracts() {
        let a = StoreStats {
            pages_read: 10,
            pages_faulted: 4,
            pages_hit: 6,
            bytes_read: 64,
        };
        let b = StoreStats {
            pages_read: 25,
            pages_faulted: 5,
            pages_hit: 20,
            bytes_read: 80,
        };
        let d = b.since(&a);
        assert_eq!(d.pages_read, 15);
        assert_eq!(d.pages_faulted, 1);
        assert_eq!(d.pages_hit, 14);
        assert_eq!(d.bytes_read, 16);
    }
}
