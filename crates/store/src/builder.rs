//! Deterministic store writer.
//!
//! [`StoreBuilder`] lays rows out page by page into a store directory
//! (`header.bin` + `pages.bin`, see [`crate::format`]). Rows are pulled
//! from a streaming `fill` callback so a build never needs the full
//! matrix in RAM — this is what lets `io_bench` write multi-million-row
//! stores in bounded memory.
//!
//! Determinism contract (§9 extended to disk artifacts): the bytes on
//! disk are a pure function of `(scheme, page_bytes, rows, dim, fill)`.
//! `chunk_rows` only controls how many encoded rows are staged between
//! `write` calls; the byte stream is identical for every chunk size and
//! is written by one thread, so worker count cannot enter at all. A
//! store build at chunk size 1 and chunk size 10 000 produces
//! byte-identical files — pinned by `builds_are_chunk_size_invariant`.

use crate::format::{self, StoreError, StoreMeta, PAGES_FILE};
use spp_graph::{FeatureMatrix, Permutation, QuantScheme, VertexId};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Default page-size target in bytes (one common 4 KiB OS page).
pub const DEFAULT_PAGE_BYTES: usize = 4096;
/// Default number of rows staged in RAM between writes.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// Writes paged feature stores to disk (see [`crate::format`] for the
/// layout).
#[derive(Clone, Copy, Debug)]
pub struct StoreBuilder {
    scheme: QuantScheme,
    page_bytes: usize,
    chunk_rows: usize,
}

impl StoreBuilder {
    /// A builder for `scheme` with default page / chunk sizes.
    pub fn new(scheme: QuantScheme) -> Self {
        Self {
            scheme,
            page_bytes: DEFAULT_PAGE_BYTES,
            chunk_rows: DEFAULT_CHUNK_ROWS,
        }
    }

    /// Sets the page-size target in bytes (pages hold as many whole rows
    /// as fit; at least one).
    pub fn page_bytes(mut self, page_bytes: usize) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        self.page_bytes = page_bytes;
        self
    }

    /// Sets how many encoded rows are staged in RAM between writes.
    /// Affects build memory only, never the bytes produced.
    pub fn chunk_rows(mut self, chunk_rows: usize) -> Self {
        assert!(chunk_rows > 0, "chunk size must be positive");
        self.chunk_rows = chunk_rows;
        self
    }

    /// Builds a store of `rows × dim` features under `dir`, pulling row
    /// `v` (store order) from `fill(v, &mut row_buf)`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on any filesystem failure.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    // spp-det(store.build)
    pub fn build_with(
        &self,
        dir: &Path,
        rows: usize,
        dim: usize,
        mut fill: impl FnMut(usize, &mut [f32]),
    ) -> Result<StoreMeta, StoreError> {
        let meta = StoreMeta::new(self.scheme, rows, dim, self.page_bytes);
        std::fs::create_dir_all(dir)?;
        meta.save(dir)?;
        let row_bytes = meta.row_bytes();
        let mut w = BufWriter::new(File::create(dir.join(PAGES_FILE))?);
        let mut row = vec![0.0f32; dim];
        // Staged encode buffer: chunk_rows encoded rows, flushed whenever
        // full. The concatenation of flushes is the same byte stream for
        // every chunk size.
        let mut staged = Vec::with_capacity(self.chunk_rows * row_bytes);
        for v in 0..rows {
            fill(v, &mut row);
            let start = staged.len();
            staged.resize(start + row_bytes, 0);
            format::encode_row(self.scheme, &row, &mut staged[start..]);
            if staged.len() >= self.chunk_rows * row_bytes {
                w.write_all(&staged)?;
                staged.clear();
            }
        }
        w.write_all(&staged)?;
        // Zero-pad the tail of the last page so the payload length always
        // equals num_pages × page_bytes.
        let pad = meta.payload_bytes() - rows * row_bytes;
        w.write_all(&vec![0u8; pad])?;
        w.flush()?;
        Ok(meta)
    }

    /// Builds a store from a dense matrix. With `perm`, physical slot
    /// `s` holds original row `perm.to_old(s)` (the VIP page-locality
    /// reorder); read it back through original ids via
    /// [`crate::PermutedStore`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on any filesystem failure.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is given and its length differs from the matrix
    /// rows.
    pub fn build_from_matrix(
        &self,
        dir: &Path,
        feats: &FeatureMatrix,
        perm: Option<&Permutation>,
    ) -> Result<StoreMeta, StoreError> {
        if let Some(p) = perm {
            assert_eq!(p.len(), feats.num_rows(), "permutation length mismatch");
        }
        self.build_with(dir, feats.num_rows(), feats.dim(), |s, out| {
            let old = match perm {
                Some(p) => p.to_old(s as VertexId),
                None => s as VertexId,
            };
            out.copy_from_slice(feats.row(old));
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inram::InRamStore;
    use crate::FeatureStore;

    fn matrix(rows: usize, dim: usize) -> FeatureMatrix {
        FeatureMatrix::from_flat(
            (0..rows * dim)
                .map(|i| ((i as f32) * 0.437).cos() * 4.0 - 0.5)
                .collect(),
            dim,
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("spp_store_{}_{}", name, std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn builds_are_chunk_size_invariant() {
        let m = matrix(103, 7);
        for scheme in [QuantScheme::F32, QuantScheme::F16, QuantScheme::I8] {
            let mut payloads = Vec::new();
            for chunk in [1usize, 3, 64, 10_000] {
                let dir = tmp(&format!("chunk{chunk}"));
                StoreBuilder::new(scheme)
                    .page_bytes(256)
                    .chunk_rows(chunk)
                    .build_from_matrix(&dir, &m, None)
                    .unwrap();
                payloads.push((
                    std::fs::read(dir.join(crate::format::HEADER_FILE)).unwrap(),
                    std::fs::read(dir.join(PAGES_FILE)).unwrap(),
                ));
                std::fs::remove_dir_all(&dir).ok();
            }
            for p in &payloads[1..] {
                assert_eq!(p, &payloads[0], "chunk size changed bytes ({scheme:?})");
            }
        }
    }

    #[test]
    fn built_store_round_trips() {
        let m = matrix(50, 9);
        let dir = tmp("roundtrip");
        StoreBuilder::new(QuantScheme::F32)
            .page_bytes(128)
            .build_from_matrix(&dir, &m, None)
            .unwrap();
        let s = InRamStore::open(&dir).unwrap();
        let mut out = vec![0.0f32; 9];
        for v in 0..50u32 {
            s.read_row_into(v, &mut out);
            assert_eq!(out.as_slice(), m.row(v), "row {v}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn permuted_build_places_old_rows_at_new_slots() {
        let m = matrix(6, 3);
        let perm = Permutation::from_order(vec![5, 4, 3, 2, 1, 0]);
        let dir = tmp("permbuild");
        StoreBuilder::new(QuantScheme::F32)
            .page_bytes(64)
            .build_from_matrix(&dir, &m, Some(&perm))
            .unwrap();
        let s = InRamStore::open(&dir).unwrap();
        let mut out = vec![0.0f32; 3];
        for slot in 0..6u32 {
            s.read_row_into(slot, &mut out);
            assert_eq!(out.as_slice(), m.row(perm.to_old(slot)), "slot {slot}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_fill_never_needs_a_matrix() {
        let dir = tmp("streamfill");
        let meta = StoreBuilder::new(QuantScheme::F16)
            .page_bytes(512)
            .build_with(&dir, 500, 4, |v, out| {
                // Integers below 2048 are exactly representable in binary16.
                for (j, o) in out.iter_mut().enumerate() {
                    *o = (v * 4 + j) as f32;
                }
            })
            .unwrap();
        assert_eq!(meta.rows, 500);
        let s = InRamStore::open(&dir).unwrap();
        let mut out = vec![0.0f32; 4];
        s.read_row_into(499, &mut out);
        assert_eq!(out, [1996.0, 1997.0, 1998.0, 1999.0]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
