//! Per-page residency tracking: the deterministic stand-in for the OS
//! page cache.
//!
//! Without a vendored mmap we cannot observe real major faults, and
//! even with one the OS eviction policy would make fault counts
//! machine-dependent — useless for the §9 determinism contract and the
//! bench regression gate. Instead the tracker models an epoch-scoped
//! resident set: every page carries an epoch stamp, [`PageTracker::begin_epoch`]
//! bumps the global epoch (dropping the whole resident set, i.e. a cold
//! cache each epoch), and the *first* touch of a page per epoch is a
//! fault while repeat touches are hits. That is exactly the quantity
//! the VIP reordering optimizes — distinct pages touched per epoch —
//! and it is bit-reproducible across machines and thread schedules.
//!
//! Concurrency: `fetch_max_relaxed` on the stamp serializes racing
//! first-touches — exactly one thread observes `prev < epoch` — so
//! fault totals are exact under any interleaving, not just quiescence.

use crate::format::StoreMeta;
use crate::StoreStats;
use spp_sync::AtomicU64;
use spp_telemetry::metrics::{counter, Counter};

/// Tracks page touches for one store backend and feeds the `store.*`
/// telemetry counters (`store.pages.read`, `store.pages.fault`,
/// `store.pages.hit`, `store.bytes.read`).
pub struct PageTracker {
    /// Current epoch; stamps equal to this value mean "resident".
    epoch: AtomicU64,
    /// Per-page epoch stamps; 0 means never touched (epochs start at 1).
    stamps: Vec<AtomicU64>,
    pages_read: AtomicU64,
    pages_faulted: AtomicU64,
    page_bytes: u64,
    // Counter handles are registered once here: `counter(name)` takes the
    // registry mutex, which must stay out of the row-read hot path.
    c_read: Counter,
    c_fault: Counter,
    c_hit: Counter,
    c_bytes: Counter,
}

impl PageTracker {
    /// A tracker for a store with `meta`'s page geometry. All pages
    /// start non-resident.
    pub fn new(meta: &StoreMeta) -> Self {
        Self {
            epoch: AtomicU64::new(1),
            stamps: (0..meta.num_pages()).map(|_| AtomicU64::new(0)).collect(),
            pages_read: AtomicU64::new(0),
            pages_faulted: AtomicU64::new(0),
            page_bytes: meta.page_bytes() as u64,
            c_read: counter("store.pages.read"),
            c_fault: counter("store.pages.fault"),
            c_hit: counter("store.pages.hit"),
            c_bytes: counter("store.bytes.read"),
        }
    }

    /// Records one read touching `page`. Returns `true` when the touch
    /// was a fault (first touch this epoch).
    // spp-hot(store.page_touch)
    #[inline]
    pub fn record(&self, page: usize) -> bool {
        let epoch = self.epoch.load_relaxed(); // spp-sync: relaxed(epoch only advances between quiesced epochs; any recent value yields valid counts)
        self.pages_read.fetch_add_relaxed(1); // spp-sync: relaxed(monotonic tally; no ordering dependents)
        self.c_read.inc();
        let prev = self.stamps[page].fetch_max_relaxed(epoch); // spp-sync: relaxed(fetch_max serializes racing first-touches; exactly one caller sees prev < epoch)
        let fault = prev < epoch;
        if fault {
            self.pages_faulted.fetch_add_relaxed(1); // spp-sync: relaxed(monotonic tally; no ordering dependents)
            self.c_fault.inc();
            self.c_bytes.add(self.page_bytes);
        } else {
            self.c_hit.inc();
        }
        fault
    }

    /// Advances to the next epoch, invalidating the modeled resident
    /// set. Call between epochs, not concurrently with reads.
    pub fn begin_epoch(&self) {
        self.epoch.fetch_add_relaxed(1); // spp-sync: relaxed(called at epoch boundaries when readers are quiesced)
    }

    /// Cumulative totals since construction (per-epoch figures are the
    /// caller's deltas between snapshots).
    pub fn stats(&self) -> StoreStats {
        let read = self.pages_read.load_relaxed(); // spp-sync: relaxed(snapshot of monotonic tally)
        let faulted = self.pages_faulted.load_relaxed(); // spp-sync: relaxed(snapshot of monotonic tally)
        StoreStats {
            pages_read: read,
            pages_faulted: faulted,
            pages_hit: read - faulted,
            bytes_read: faulted * self.page_bytes,
        }
    }

    /// Bytes per page, as charged to `bytes_read` on each fault.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_graph::QuantScheme;

    fn tracker(pages: usize) -> PageTracker {
        // page_rows=1, dim=1, f32 → page_bytes = 4, num_pages = rows.
        PageTracker::new(&StoreMeta::new(QuantScheme::F32, pages, 1, 1))
    }

    #[test]
    fn first_touch_faults_repeat_hits() {
        let t = tracker(4);
        assert!(t.record(2));
        assert!(!t.record(2));
        assert!(t.record(0));
        let s = t.stats();
        assert_eq!(s.pages_read, 3);
        assert_eq!(s.pages_faulted, 2);
        assert_eq!(s.pages_hit, 1);
        assert_eq!(s.bytes_read, 8);
    }

    #[test]
    fn epoch_boundary_drops_residency() {
        let t = tracker(2);
        assert!(t.record(1));
        assert!(!t.record(1));
        t.begin_epoch();
        assert!(t.record(1), "new epoch must re-fault");
        assert_eq!(t.stats().pages_faulted, 2);
    }

    #[test]
    fn concurrent_first_touch_counts_one_fault() {
        use std::sync::Arc;
        let t = Arc::new(tracker(1));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        t.record(0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = t.stats();
        assert_eq!(s.pages_read, 800);
        assert_eq!(s.pages_faulted, 1);
    }
}
