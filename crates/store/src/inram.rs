//! In-RAM paged backend: the whole `pages.bin` payload resident in one
//! byte buffer.
//!
//! This is the upper-bound baseline for the out-of-core experiments
//! (every page touch is tracked, but reads never hit the filesystem)
//! and the reference backend for the Mmap bit-identity tests — both
//! decode through [`format::decode_row`] over the identical page
//! layout.

use crate::format::{self, StoreMeta};
use crate::tracker::PageTracker;
use crate::{FeatureStore, StoreStats};
use spp_graph::{FeatureMatrix, QuantScheme, VertexId};
use std::path::Path;

/// Paged feature rows held fully in RAM.
pub struct InRamStore {
    meta: StoreMeta,
    pages: Vec<u8>,
    tracker: PageTracker,
}

impl InRamStore {
    /// Opens a store directory (see [`crate::StoreBuilder`]) and loads
    /// the entire payload.
    ///
    /// # Errors
    ///
    /// Returns [`format::StoreError`] on I/O failure, a bad header, or
    /// a payload whose size disagrees with the header.
    pub fn open(dir: &Path) -> Result<Self, format::StoreError> {
        let meta = StoreMeta::load(dir)?;
        let pages = std::fs::read(StoreMeta::pages_path(dir))?;
        if pages.len() != meta.payload_bytes() {
            return Err(format::StoreError::Corrupt(format!(
                "pages.bin is {} bytes, header implies {}",
                pages.len(),
                meta.payload_bytes()
            )));
        }
        Ok(Self::from_pages(meta, pages))
    }

    /// Encodes a dense matrix directly into a resident store (no disk
    /// round trip) — handy for tests and small experiments.
    pub fn from_matrix(feats: &FeatureMatrix, scheme: QuantScheme, page_bytes: usize) -> Self {
        let meta = StoreMeta::new(scheme, feats.num_rows(), feats.dim(), page_bytes);
        let mut pages = vec![0u8; meta.payload_bytes()];
        let row_bytes = meta.row_bytes();
        for v in 0..meta.rows {
            let off = meta.row_offset(v);
            format::encode_row(
                scheme,
                feats.row(v as VertexId),
                &mut pages[off..off + row_bytes],
            );
        }
        Self::from_pages(meta, pages)
    }

    fn from_pages(meta: StoreMeta, pages: Vec<u8>) -> Self {
        let tracker = PageTracker::new(&meta);
        Self {
            meta,
            pages,
            tracker,
        }
    }

    /// Store geometry.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }
}

impl FeatureStore for InRamStore {
    fn num_rows(&self) -> usize {
        self.meta.rows
    }

    fn dim(&self) -> usize {
        self.meta.dim
    }

    fn scheme(&self) -> QuantScheme {
        self.meta.scheme
    }

    /// # Panics
    ///
    /// Panics if `v` is out of range or `out.len() != dim`.
    // spp-hot(store.read_row.inram)
    fn read_row_into(&self, v: VertexId, out: &mut [f32]) {
        let v = v as usize;
        assert!(v < self.meta.rows, "row {v} out of range");
        self.tracker.record(self.meta.page_of(v));
        let off = self.meta.row_offset(v);
        let bytes = &self.pages[off..off + self.meta.row_bytes()];
        format::decode_row(self.meta.scheme, bytes, out);
    }

    fn begin_epoch(&self) {
        self.tracker.begin_epoch();
    }

    fn stats(&self) -> StoreStats {
        self.tracker.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: usize, dim: usize) -> FeatureMatrix {
        FeatureMatrix::from_flat(
            (0..rows * dim)
                .map(|i| ((i as f32) * 0.719).sin() * 3.0)
                .collect(),
            dim,
        )
    }

    #[test]
    fn from_matrix_round_trips_f32() {
        let m = matrix(9, 5);
        let s = InRamStore::from_matrix(&m, QuantScheme::F32, 64);
        let mut out = vec![0.0f32; 5];
        for v in 0..9u32 {
            s.read_row_into(v, &mut out);
            assert_eq!(out.as_slice(), m.row(v), "row {v}");
        }
    }

    #[test]
    fn tracking_counts_page_touches() {
        let m = matrix(8, 4); // f32 row = 16 bytes; page 32 bytes → 2 rows/page
        let s = InRamStore::from_matrix(&m, QuantScheme::F32, 32);
        assert_eq!(s.meta().page_rows, 2);
        let mut out = vec![0.0f32; 4];
        s.read_row_into(0, &mut out); // fault page 0
        s.read_row_into(1, &mut out); // hit page 0
        s.read_row_into(7, &mut out); // fault page 3
        let st = s.stats();
        assert_eq!(st.pages_read, 3);
        assert_eq!(st.pages_faulted, 2);
        assert_eq!(st.pages_hit, 1);
        assert_eq!(st.bytes_read, 64);
        s.begin_epoch();
        s.read_row_into(0, &mut out); // re-fault after epoch
        assert_eq!(s.stats().pages_faulted, 3);
    }
}
