//! Streaming CSR construction in bounded memory.
//!
//! [`spp_graph::GraphBuilder`] keeps every pending edge in one `Vec`,
//! which caps graph size at available RAM (the multi-million-vertex
//! generators in `io_bench` would need gigabytes). The streaming builder
//! is the classic external-sort pipeline instead:
//!
//! 1. edges accumulate in a bounded chunk buffer (`chunk_edges` pairs);
//! 2. each full chunk is sorted, deduplicated, and spilled to a run file
//!    (`run_<i>.bin`, one little-endian `u64` key per edge,
//!    `key = src << 32 | dst`, so byte order ≡ `(src, dst)` order);
//! 3. `finish()` k-way-merges the runs with a min-heap, dropping
//!    duplicate keys across runs, and emits CSR arrays directly from the
//!    globally sorted stream.
//!
//! The result is **bitwise-equal** to `GraphBuilder::build()` on the
//! same edge multiset: both reduce to the globally `(src, dst)`-sorted,
//! deduplicated, self-loop-free edge list (GraphBuilder gets there via
//! counting sort by source + per-row sort/dedup). The equivalence is
//! pinned across all four [`spp_graph::generate::GraphFamily`] variants
//! and chunk sizes by proptest in `tests/stream_equiv.rs`.
//!
//! Peak memory is `chunk_edges × 8` bytes for the chunk buffer plus one
//! small read buffer per run and the output CSR itself — independent of
//! the total edge count.

use crate::format::StoreError;
use spp_graph::{CsrGraph, VertexId};
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Default chunk size: 4M edges ≈ 32 MiB of buffered pairs.
pub const DEFAULT_CHUNK_EDGES: usize = 4 << 20;

/// Builds a [`CsrGraph`] from an edge stream using sorted spill runs and
/// a k-way merge, in memory bounded by the chunk size.
pub struct StreamingCsrBuilder {
    n: usize,
    spill_dir: PathBuf,
    chunk_edges: usize,
    buf: Vec<u64>,
    /// `(path, edges_in_run)` for each spilled run.
    runs: Vec<(PathBuf, u64)>,
}

impl StreamingCsrBuilder {
    /// A builder for `n` vertices spilling runs under `spill_dir` (the
    /// directory is created on first spill and the run files are removed
    /// by [`Self::finish`]).
    pub fn new(n: usize, spill_dir: &Path) -> Self {
        Self {
            n,
            spill_dir: spill_dir.to_path_buf(),
            chunk_edges: DEFAULT_CHUNK_EDGES,
            buf: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Sets the chunk size in edges (the memory bound). The built graph
    /// is bitwise-identical for every chunk size.
    pub fn chunk_edges(mut self, chunk_edges: usize) -> Self {
        assert!(chunk_edges > 0, "chunk size must be positive");
        self.chunk_edges = chunk_edges;
        self
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds a directed edge `src -> dst`. Self-loops are dropped
    /// immediately (matching `GraphBuilder::build`'s retain pass).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if spilling a full chunk fails.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> Result<(), StoreError> {
        assert!(
            (src as usize) < self.n && (dst as usize) < self.n,
            "edge ({src}, {dst}) out of range for {} vertices",
            self.n
        );
        if src == dst {
            return Ok(());
        }
        self.buf.push(((src as u64) << 32) | dst as u64);
        if self.buf.len() >= self.chunk_edges {
            self.spill()?;
        }
        Ok(())
    }

    /// Adds both directions of an undirected edge.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if spilling a full chunk fails.
    pub fn add_undirected_edge(&mut self, a: VertexId, b: VertexId) -> Result<(), StoreError> {
        self.add_edge(a, b)?;
        self.add_edge(b, a)
    }

    fn spill(&mut self) -> Result<(), StoreError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        self.buf.dedup();
        std::fs::create_dir_all(&self.spill_dir)?;
        let path = self.spill_dir.join(format!("run_{}.bin", self.runs.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for &key in &self.buf {
            w.write_all(&key.to_le_bytes())?;
        }
        w.flush()?;
        self.runs.push((path, self.buf.len() as u64));
        self.buf.clear();
        Ok(())
    }

    /// Merges all runs into the final CSR graph and removes the run
    /// files. Equivalent to `GraphBuilder::build()` on the same edges.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on any filesystem failure.
    pub fn finish(mut self) -> Result<CsrGraph, StoreError> {
        self.spill()?;
        let mut readers: Vec<RunReader> = Vec::with_capacity(self.runs.len());
        for (path, edges) in &self.runs {
            readers.push(RunReader::open(path, *edges)?);
        }
        // Min-heap over (key, run). Keys within a run are strictly
        // increasing, so equal keys across runs are adjacent in pop
        // order and collapse via the `last` check.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
        for (i, r) in readers.iter_mut().enumerate() {
            if let Some(key) = r.next_key()? {
                heap.push(std::cmp::Reverse((key, i)));
            }
        }
        let mut row_ptr = vec![0usize; self.n + 1];
        let mut col: Vec<VertexId> = Vec::new();
        let mut last: Option<u64> = None;
        while let Some(std::cmp::Reverse((key, run))) = heap.pop() {
            if last != Some(key) {
                last = Some(key);
                let src = (key >> 32) as usize;
                // spp-lint: allow(l2-csr-index): building this CSR's own offsets from the sorted stream, not traversing a graph
                row_ptr[src + 1] += 1;
                col.push(key as u32 as VertexId);
            }
            if let Some(next) = readers[run].next_key()? {
                heap.push(std::cmp::Reverse((next, run)));
            }
        }
        for v in 0..self.n {
            // spp-lint: allow(l2-csr-index): prefix sum over the degree counts accumulated above, same construction pass
            row_ptr[v + 1] += row_ptr[v];
        }
        for (path, _) in &self.runs {
            std::fs::remove_file(path).ok();
        }
        Ok(CsrGraph::from_raw_parts(row_ptr, col))
    }
}

/// Sequential reader over one spilled run.
struct RunReader {
    r: BufReader<File>,
    remaining: u64,
}

impl RunReader {
    fn open(path: &Path, edges: u64) -> Result<Self, StoreError> {
        Ok(Self {
            r: BufReader::with_capacity(64 << 10, File::open(path)?),
            remaining: edges,
        })
    }

    fn next_key(&mut self) -> Result<Option<u64>, StoreError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut b = [0u8; 8];
        self.r.read_exact(&mut b)?;
        Ok(Some(u64::from_le_bytes(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_graph::GraphBuilder;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spp_spill_{}_{}", name, std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn matches_graph_builder_on_small_input() {
        let edges = [(0u32, 1u32), (1, 0), (0, 1), (2, 2), (3, 1), (1, 3), (0, 3)];
        let mut gb = GraphBuilder::new(4);
        let dir = tmp("small");
        let mut sb = StreamingCsrBuilder::new(4, &dir).chunk_edges(2);
        for &(s, d) in &edges {
            gb.add_edge(s, d);
            sb.add_edge(s, d).unwrap();
        }
        assert_eq!(sb.finish().unwrap(), gb.build());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_stream_builds_empty_graph() {
        let dir = tmp("empty");
        let g = StreamingCsrBuilder::new(5, &dir).finish().unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn chunk_size_does_not_change_graph() {
        let edges: Vec<(u32, u32)> = (0..500u32)
            .map(|i| ((i * 7919 % 97), (i * 104729 % 97)))
            .collect();
        let mut want = None;
        for chunk in [1usize, 7, 64, 100_000] {
            let dir = tmp(&format!("chunk{chunk}"));
            let mut sb = StreamingCsrBuilder::new(97, &dir).chunk_edges(chunk);
            for &(s, d) in &edges {
                sb.add_edge(s, d).unwrap();
            }
            let g = sb.finish().unwrap();
            match &want {
                None => want = Some(g),
                Some(w) => assert_eq!(&g, w, "chunk {chunk}"),
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn run_files_are_cleaned_up() {
        let dir = tmp("cleanup");
        let mut sb = StreamingCsrBuilder::new(10, &dir).chunk_edges(2);
        for i in 0..9u32 {
            sb.add_edge(i % 10, (i + 1) % 10).unwrap();
        }
        sb.finish().unwrap();
        let leftovers = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(leftovers, 0, "run files must be removed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let dir = tmp("oob");
        let mut sb = StreamingCsrBuilder::new(2, &dir);
        sb.add_edge(0, 2).unwrap();
    }
}
