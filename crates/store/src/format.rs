//! The on-disk store format: versioned header, paged row layout, and
//! the per-row byte codecs.
//!
//! A store is a directory with two files:
//!
//! * `header.bin` — magic `SPPS`, version, and the geometry
//!   ([`StoreMeta`]): scheme, row/dim counts, page shape.
//! * `pages.bin` — `num_pages` fixed-size pages of `page_bytes` bytes.
//!   Rows never span pages (`page_bytes = page_rows × row_bytes`); the
//!   last page is zero-padded. Row `v` lives at byte offset
//!   `(v / page_rows) * page_bytes + (v % page_rows) * row_bytes`.
//!
//! Row encodings are little-endian and reuse the exact arithmetic of
//! [`spp_graph::QuantizedFeatures`] (DESIGN.md §14), so a store round
//! trip is bit-identical to the in-RAM quantized tiers:
//!
//! * `f32` — `dim` × 4 bytes, raw IEEE bits.
//! * `f16` — `dim` × 2 bytes, round-to-nearest-even binary16.
//! * `i8`  — `[min: f32][scale: f32][dim × i8]` per-row affine codes
//!   (the codebook rides in the row, unlike the in-RAM tier's parallel
//!   arrays, so a row is one contiguous disk read).
//!
//! Everything validates on load and surfaces [`StoreError`] — a corrupt
//! or truncated store must never panic the reader (the SPPD contract
//! from `spp_graph::io` extended to store artifacts).

use spp_graph::quant::{f16_bits_to_f32, f32_to_f16_bits};
use spp_graph::QuantScheme;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening `header.bin`.
pub const MAGIC: &[u8; 4] = b"SPPS";
/// Current header version.
pub const VERSION: u32 = 1;
/// File name of the header inside a store directory.
pub const HEADER_FILE: &str = "header.bin";
/// File name of the page payload inside a store directory.
pub const PAGES_FILE: &str = "pages.bin";

/// Errors from building or opening a store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a store header (bad magic).
    BadMagic,
    /// Unsupported header version.
    BadVersion(u32),
    /// Structurally invalid contents (message explains).
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a feature store (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The geometry of a paged store: everything a reader needs to locate
/// and decode any row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// Row storage scheme.
    pub scheme: QuantScheme,
    /// Number of feature rows.
    pub rows: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Rows per page (≥ 1; rows never span pages).
    pub page_rows: usize,
}

impl StoreMeta {
    /// Geometry for `rows × dim` features under `scheme`, with pages
    /// sized to hold as many whole rows as fit in `page_bytes_target`
    /// (at least one).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(scheme: QuantScheme, rows: usize, dim: usize, page_bytes_target: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        let row_bytes = scheme.row_bytes(dim);
        let page_rows = (page_bytes_target / row_bytes).max(1);
        Self {
            scheme,
            rows,
            dim,
            page_rows,
        }
    }

    /// Bytes one encoded row occupies.
    pub fn row_bytes(&self) -> usize {
        self.scheme.row_bytes(self.dim)
    }

    /// Bytes per page (`page_rows × row_bytes`).
    pub fn page_bytes(&self) -> usize {
        self.page_rows * self.row_bytes()
    }

    /// Number of pages (`ceil(rows / page_rows)`).
    pub fn num_pages(&self) -> usize {
        self.rows.div_ceil(self.page_rows)
    }

    /// Total payload bytes (`num_pages × page_bytes`).
    pub fn payload_bytes(&self) -> usize {
        self.num_pages() * self.page_bytes()
    }

    /// Page holding row `v`.
    #[inline]
    pub fn page_of(&self, v: usize) -> usize {
        v / self.page_rows
    }

    /// Byte offset of row `v` inside `pages.bin`.
    #[inline]
    pub fn row_offset(&self, v: usize) -> usize {
        self.page_of(v) * self.page_bytes() + (v % self.page_rows) * self.row_bytes()
    }

    /// Writes `header.bin` under `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on write failure.
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        let mut w = BufWriter::new(File::create(dir.join(HEADER_FILE))?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        let scheme_tag: u32 = match self.scheme {
            QuantScheme::F32 => 0,
            QuantScheme::F16 => 1,
            QuantScheme::I8 => 2,
        };
        w.write_all(&scheme_tag.to_le_bytes())?;
        for v in [
            self.rows as u64,
            self.dim as u64,
            self.page_rows as u64,
            self.num_pages() as u64,
            self.row_bytes() as u64,
            self.page_bytes() as u64,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        w.flush()?;
        Ok(())
    }

    /// Reads and validates `header.bin` under `dir`. The redundant
    /// derived fields (page count, row/page bytes) are cross-checked
    /// against the primary geometry so a corrupted header cannot send
    /// readers past the payload.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure, bad magic/version, or any
    /// inconsistent field.
    pub fn load(dir: &Path) -> Result<Self, StoreError> {
        let mut r = BufReader::new(File::open(dir.join(HEADER_FILE))?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let scheme = match read_u32(&mut r)? {
            0 => QuantScheme::F32,
            1 => QuantScheme::F16,
            2 => QuantScheme::I8,
            t => return Err(StoreError::Corrupt(format!("unknown scheme tag {t}"))),
        };
        let rows = read_u64(&mut r)? as usize;
        let dim = read_u64(&mut r)? as usize;
        let page_rows = read_u64(&mut r)? as usize;
        let num_pages = read_u64(&mut r)? as usize;
        let row_bytes = read_u64(&mut r)? as usize;
        let page_bytes = read_u64(&mut r)? as usize;
        if dim == 0 || page_rows == 0 {
            return Err(StoreError::Corrupt("zero dim or page_rows".to_string()));
        }
        let meta = Self {
            scheme,
            rows,
            dim,
            page_rows,
        };
        if row_bytes != meta.row_bytes()
            || page_bytes != meta.page_bytes()
            || num_pages != meta.num_pages()
        {
            return Err(StoreError::Corrupt(format!(
                "derived fields disagree with geometry: header says \
                 ({num_pages} pages, {row_bytes} row bytes, {page_bytes} page bytes), \
                 geometry implies ({}, {}, {})",
                meta.num_pages(),
                meta.row_bytes(),
                meta.page_bytes()
            )));
        }
        Ok(meta)
    }

    /// Path of the page payload under `dir`.
    pub fn pages_path(dir: &Path) -> PathBuf {
        dir.join(PAGES_FILE)
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Encodes one feature row into its on-disk byte layout. The `i8`
/// arithmetic mirrors [`spp_graph::QuantizedFeatures::set_row`] exactly
/// so disk and in-RAM tiers decode bit-identically.
///
/// # Panics
///
/// Panics if `out.len() != scheme.row_bytes(row.len())`.
pub fn encode_row(scheme: QuantScheme, row: &[f32], out: &mut [u8]) {
    assert_eq!(
        out.len(),
        scheme.row_bytes(row.len()),
        "encode buffer size mismatch"
    );
    match scheme {
        QuantScheme::F32 => {
            for (o, &v) in out.chunks_exact_mut(4).zip(row) {
                o.copy_from_slice(&v.to_le_bytes());
            }
        }
        QuantScheme::F16 => {
            for (o, &v) in out.chunks_exact_mut(2).zip(row) {
                o.copy_from_slice(&f32_to_f16_bits(v).to_le_bytes());
            }
        }
        QuantScheme::I8 => {
            let (lo, hi) = row
                .iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
                    (l.min(v), h.max(v))
                });
            let (lo, hi) = if lo > hi { (0.0, 0.0) } else { (lo, hi) };
            let s = (hi - lo) / 255.0;
            out[0..4].copy_from_slice(&lo.to_le_bytes());
            out[4..8].copy_from_slice(&s.to_le_bytes());
            let inv = if s > 0.0 { 1.0 / s } else { 0.0 };
            for (o, &v) in out[8..].iter_mut().zip(row) {
                let code = ((v - lo) * inv).round().clamp(0.0, 255.0) as i32 - 128;
                *o = (code as i8) as u8;
            }
        }
    }
}

/// Decodes one on-disk row into `out` (allocation-free; the paged-read
/// hot path funnels here). The `i8`/`f16` arithmetic mirrors
/// [`spp_graph::QuantizedFeatures::read_row_into`] exactly.
///
/// # Panics
///
/// Panics if `bytes.len() != scheme.row_bytes(out.len())`.
pub fn decode_row(scheme: QuantScheme, bytes: &[u8], out: &mut [f32]) {
    assert_eq!(
        bytes.len(),
        scheme.row_bytes(out.len()),
        "decode buffer size mismatch"
    );
    match scheme {
        QuantScheme::F32 => {
            for (o, b) in out.iter_mut().zip(bytes.chunks_exact(4)) {
                *o = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            }
        }
        QuantScheme::F16 => {
            for (o, b) in out.iter_mut().zip(bytes.chunks_exact(2)) {
                *o = f16_bits_to_f32(u16::from_le_bytes([b[0], b[1]]));
            }
        }
        QuantScheme::I8 => {
            let lo = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            let s = f32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
            for (o, &b) in out.iter_mut().zip(&bytes[8..]) {
                *o = ((b as i8) as i32 + 128) as f32 * s + lo;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_graph::QuantizedFeatures;

    fn sample_row(dim: usize, salt: u64) -> Vec<f32> {
        (0..dim)
            .map(|i| ((i as f32 + salt as f32) * 0.37).sin() * 5.0 - 1.0)
            .collect()
    }

    #[test]
    fn codecs_match_in_ram_quantized_tiers_bitwise() {
        for scheme in [QuantScheme::F32, QuantScheme::F16, QuantScheme::I8] {
            let row = sample_row(37, 3);
            let mut q = QuantizedFeatures::with_rows(1, 37, scheme);
            q.set_row(0, &row);
            let mut want = vec![0.0f32; 37];
            q.read_row_into(0, &mut want);

            let mut bytes = vec![0u8; scheme.row_bytes(37)];
            encode_row(scheme, &row, &mut bytes);
            let mut got = vec![0.0f32; 37];
            decode_row(scheme, &bytes, &mut got);
            let a: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "scheme {}", scheme.name());
        }
    }

    #[test]
    fn f32_roundtrip_is_lossless() {
        let row = sample_row(16, 0);
        let mut bytes = vec![0u8; QuantScheme::F32.row_bytes(16)];
        encode_row(QuantScheme::F32, &row, &mut bytes);
        let mut got = vec![0.0f32; 16];
        decode_row(QuantScheme::F32, &bytes, &mut got);
        assert_eq!(row, got);
    }

    #[test]
    fn meta_geometry() {
        let m = StoreMeta::new(QuantScheme::F16, 10, 8, 64);
        assert_eq!(m.row_bytes(), 16);
        assert_eq!(m.page_rows, 4);
        assert_eq!(m.page_bytes(), 64);
        assert_eq!(m.num_pages(), 3);
        assert_eq!(m.payload_bytes(), 192);
        assert_eq!(m.page_of(0), 0);
        assert_eq!(m.page_of(4), 1);
        assert_eq!(m.row_offset(5), 64 + 16);
    }

    #[test]
    fn tiny_page_target_still_holds_one_row() {
        let m = StoreMeta::new(QuantScheme::F32, 3, 8, 1);
        assert_eq!(m.page_rows, 1);
        assert_eq!(m.num_pages(), 3);
    }

    #[test]
    fn header_roundtrip_and_validation() {
        let dir = std::env::temp_dir().join(format!("spp_store_hdr_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = StoreMeta::new(QuantScheme::I8, 100, 12, 4096);
        m.save(&dir).unwrap();
        assert_eq!(StoreMeta::load(&dir).unwrap(), m);

        // Bad magic.
        std::fs::write(dir.join(HEADER_FILE), b"NOPExxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(StoreMeta::load(&dir), Err(StoreError::BadMagic)));

        // Bad version.
        let mut hdr = Vec::new();
        hdr.extend_from_slice(MAGIC);
        hdr.extend_from_slice(&99u32.to_le_bytes());
        hdr.extend_from_slice(&[0u8; 52]);
        std::fs::write(dir.join(HEADER_FILE), hdr).unwrap();
        assert!(matches!(
            StoreMeta::load(&dir),
            Err(StoreError::BadVersion(99))
        ));

        // Inconsistent derived field.
        m.save(&dir).unwrap();
        let mut raw = std::fs::read(dir.join(HEADER_FILE)).unwrap();
        let n = raw.len();
        raw[n - 8..].copy_from_slice(&7u64.to_le_bytes()); // corrupt page_bytes
        std::fs::write(dir.join(HEADER_FILE), raw).unwrap();
        assert!(matches!(StoreMeta::load(&dir), Err(StoreError::Corrupt(_))));

        std::fs::remove_dir_all(&dir).ok();
    }
}
