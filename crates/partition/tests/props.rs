//! Property-based tests for partitioning.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use spp_graph::generate::GeneratorConfig;
use spp_partition::multilevel::MultilevelPartitioner;
use spp_partition::{metrics, simple, VertexWeights};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn multilevel_outputs_are_valid_and_balanced(
        n in 64usize..400,
        m in 100usize..1500,
        k in 2usize..6,
        seed in 0u64..200,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let w = VertexWeights::uniform(&g);
        let p = MultilevelPartitioner::new(k).seed(seed).partition(&g, &w);
        prop_assert_eq!(p.num_vertices(), n);
        prop_assert_eq!(p.num_parts(), k);
        prop_assert_eq!(p.sizes().iter().sum::<usize>(), n);
        // Vertex-count balance within tolerance + one-vertex slack.
        let imb = metrics::imbalance(&p, &w);
        let limit = 1.05 + (k as f64) / (n as f64) * 2.0 + 0.15;
        prop_assert!(imb[0] <= limit, "imbalance {} > {limit}", imb[0]);
    }

    #[test]
    fn multilevel_beats_random_on_community_graphs(
        blocks in 2usize..6,
        seed in 0u64..100,
    ) {
        let n = 600;
        let g = GeneratorConfig::planted_partition(n, 6 * n, blocks, 0.93)
            .seed(seed)
            .build();
        let w = VertexWeights::uniform(&g);
        let ml = MultilevelPartitioner::new(blocks).seed(seed).partition(&g, &w);
        let rnd = simple::random_partition(n, blocks, seed);
        let cut_ml = metrics::edge_cut_fraction(&g, &ml);
        let cut_rnd = metrics::edge_cut_fraction(&g, &rnd);
        prop_assert!(
            cut_ml < cut_rnd,
            "multilevel {cut_ml:.3} should beat random {cut_rnd:.3}"
        );
    }

    #[test]
    fn halo_members_are_remote_and_adjacent(
        n in 32usize..200,
        m in 50usize..600,
        k in 2usize..5,
        seed in 0u64..100,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let p = simple::hash_partition(n, k);
        let halos = metrics::one_hop_halos(&g, &p);
        for (part, halo) in halos.iter().enumerate() {
            for &v in halo {
                prop_assert!(p.part_of(v) != part as u32, "halo vertex is local");
                // Must be adjacent to some vertex of `part`.
                let touches = g
                    .neighbors(v)
                    .iter()
                    .any(|&u| p.part_of(u) == part as u32);
                prop_assert!(touches, "halo vertex {v} not adjacent to part {part}");
            }
        }
    }

    #[test]
    fn edge_cut_between_zero_and_all(
        n in 16usize..128,
        m in 10usize..400,
        k in 1usize..5,
        seed in 0u64..100,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let p = simple::random_partition(n, k, seed);
        let frac = metrics::edge_cut_fraction(&g, &p);
        prop_assert!((0.0..=1.0).contains(&frac));
        if k == 1 {
            prop_assert_eq!(frac, 0.0);
        }
    }
}
