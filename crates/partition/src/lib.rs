//! Graph partitioning for distributed GNN training.
//!
//! SALIENT++ distributes vertex features according to an edge-cut
//! partitioning computed by METIS with balancing constraints on the number
//! of training, validation, and overall vertices, and on the number of
//! edges per partition (paper §1, §4.1). This crate provides:
//!
//! - [`multilevel::MultilevelPartitioner`] — a METIS-style multilevel
//!   partitioner (heavy-edge-matching coarsening, greedy growing initial
//!   partition, boundary FM refinement) with those same multi-constraint
//!   balance targets;
//! - simple baselines ([`simple`]) — random, hash, and block partitioning;
//! - partition quality [`metrics`] — edge cut, per-constraint imbalance,
//!   and halo sizes.
//!
//! # Example
//!
//! ```
//! use spp_graph::generate::GeneratorConfig;
//! use spp_partition::{multilevel::MultilevelPartitioner, VertexWeights};
//!
//! let g = GeneratorConfig::planted_partition(400, 2400, 4, 0.9).seed(3).build();
//! let w = VertexWeights::uniform(&g);
//! let p = MultilevelPartitioner::new(4).seed(1).partition(&g, &w);
//! assert_eq!(p.num_parts(), 4);
//! let cut = spp_partition::metrics::edge_cut(&g, &p);
//! assert!(cut < g.num_edges() / 2);
//! ```

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]
// Index-based loops over multiple parallel arrays are used deliberately
// throughout (CSR sweeps, per-partition load vectors); iterator zips would
// obscure which array drives the bound.
#![allow(clippy::needless_range_loop)]

pub mod hierarchical;
pub mod metrics;
pub mod multilevel;
pub mod simple;
pub mod weights;

pub use weights::{VertexWeights, NUM_CONSTRAINTS};

use spp_graph::VertexId;

/// An assignment of every vertex to one of `k` parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partitioning {
    assignment: Vec<u32>,
    k: usize,
}

impl Partitioning {
    /// Wraps an assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or any label is `>= k`.
    pub fn new(assignment: Vec<u32>, k: usize) -> Self {
        assert!(k > 0, "need at least one part");
        assert!(
            assignment.iter().all(|&p| (p as usize) < k),
            "part label out of range"
        );
        Self { assignment, k }
    }

    /// Number of parts.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// The part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// The raw assignment slice.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Vertex ids of part `p`, in ascending order.
    pub fn members(&self, p: u32) -> Vec<VertexId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q == p)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Part sizes (vertex counts).
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.k];
        for &p in &self.assignment {
            s[p as usize] += 1;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_basics() {
        let p = Partitioning::new(vec![0, 1, 1, 0], 2);
        assert_eq!(p.num_parts(), 2);
        assert_eq!(p.part_of(2), 1);
        assert_eq!(p.members(0), vec![0, 3]);
        assert_eq!(p.sizes(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "part label out of range")]
    fn rejects_bad_labels() {
        Partitioning::new(vec![0, 2], 2);
    }
}
