//! Multi-constraint vertex weights.

use spp_graph::{CsrGraph, Dataset, VertexId};

/// Number of balance constraints: overall vertices, training vertices,
/// validation vertices, and edges (degree).
pub const NUM_CONSTRAINTS: usize = 4;

/// Per-vertex weight vectors for multi-constraint balancing, matching the
/// paper's METIS configuration: each partition should hold roughly equal
/// shares of (a) all vertices, (b) training vertices, (c) validation
/// vertices, and (d) edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexWeights {
    w: Vec<[u64; NUM_CONSTRAINTS]>,
}

impl VertexWeights {
    /// Weights for a bare graph: every vertex counts 1 toward the overall
    /// constraint, 0 toward train/val, and its degree toward edges.
    pub fn uniform(graph: &CsrGraph) -> Self {
        let w = (0..graph.num_vertices())
            .map(|v| [1, 0, 0, graph.degree(v as VertexId) as u64])
            .collect();
        Self { w }
    }

    /// Weights from a dataset's splits: train/val membership becomes
    /// constraints 1 and 2.
    pub fn from_dataset(ds: &Dataset) -> Self {
        let mut this = Self::uniform(&ds.graph);
        for &v in &ds.split.train {
            this.w[v as usize][1] = 1;
        }
        for &v in &ds.split.val {
            this.w[v as usize][2] = 1;
        }
        this
    }

    /// Builds from explicit per-vertex weight vectors.
    pub fn from_raw(w: Vec<[u64; NUM_CONSTRAINTS]>) -> Self {
        Self { w }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True if there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Weight vector of a vertex.
    #[inline]
    pub fn of(&self, v: VertexId) -> &[u64; NUM_CONSTRAINTS] {
        &self.w[v as usize]
    }

    /// The raw weight array.
    pub fn as_slice(&self) -> &[[u64; NUM_CONSTRAINTS]] {
        &self.w
    }

    /// Sum of all weight vectors.
    pub fn totals(&self) -> [u64; NUM_CONSTRAINTS] {
        let mut t = [0u64; NUM_CONSTRAINTS];
        for w in &self.w {
            for c in 0..NUM_CONSTRAINTS {
                t[c] += w[c];
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_graph::dataset::SyntheticSpec;
    use spp_graph::generate::complete;

    #[test]
    fn uniform_weights() {
        let g = complete(4);
        let w = VertexWeights::uniform(&g);
        assert_eq!(w.len(), 4);
        assert_eq!(w.of(0), &[1, 0, 0, 3]);
        assert_eq!(w.totals(), [4, 0, 0, 12]);
    }

    #[test]
    fn dataset_weights_mark_splits() {
        let ds = SyntheticSpec::new("t", 100, 6.0, 4, 2)
            .split_fractions(0.2, 0.1, 0.1)
            .seed(1)
            .build();
        let w = VertexWeights::from_dataset(&ds);
        let t = w.totals();
        assert_eq!(t[1] as usize, ds.split.train.len());
        assert_eq!(t[2] as usize, ds.split.val.len());
        assert_eq!(t[0] as usize, 100);
    }
}
