//! Baseline partitioners: random, hash, contiguous block, and streaming
//! linear-deterministic-greedy (LDG).

use crate::{Partitioning, VertexWeights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spp_graph::{CsrGraph, VertexId};

/// Assigns vertices to parts uniformly at random (seeded).
pub fn random_partition(n: usize, k: usize, seed: u64) -> Partitioning {
    assert!(k > 0, "need at least one part");
    let mut rng = StdRng::seed_from_u64(seed);
    Partitioning::new((0..n).map(|_| rng.gen_range(0..k) as u32).collect(), k)
}

/// Assigns vertex `v` to part `hash(v) % k` — the stateless scheme many
/// distributed systems default to.
pub fn hash_partition(n: usize, k: usize) -> Partitioning {
    assert!(k > 0, "need at least one part");
    let h = |v: usize| ((v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % k;
    Partitioning::new((0..n).map(|v| h(v) as u32).collect(), k)
}

/// Assigns contiguous id ranges to parts. With id-contiguous community
/// structure (e.g. the planted-partition generator) this is a strong
/// "oracle-structure" partitioner; on arbitrary orderings it is weak.
pub fn block_partition(n: usize, k: usize) -> Partitioning {
    assert!(k > 0, "need at least one part");
    Partitioning::new((0..n).map(|v| ((v * k) / n.max(1)) as u32).collect(), k)
}

/// Streaming linear-deterministic-greedy (LDG) partitioner: processes
/// vertices in id order, placing each in the part with the most neighbors
/// already placed, damped by a capacity penalty `(1 - size/capacity)`.
pub fn ldg_partition(graph: &CsrGraph, k: usize, weights: &VertexWeights) -> Partitioning {
    assert!(k > 0, "need at least one part");
    let n = graph.num_vertices();
    let capacity = (weights.totals()[0] as f64 / k as f64) * 1.1 + 1.0;
    let mut assignment = vec![u32::MAX; n];
    let mut load = vec![0u64; k];
    let mut neigh_count = vec![0usize; k];
    for v in 0..n as VertexId {
        neigh_count.iter_mut().for_each(|c| *c = 0);
        for &u in graph.neighbors(v) {
            let p = assignment[u as usize];
            if p != u32::MAX {
                neigh_count[p as usize] += 1;
            }
        }
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for p in 0..k {
            let damp = 1.0 - load[p] as f64 / capacity;
            let score = neigh_count[p] as f64 * damp.max(0.0) + damp * 1e-6; // tie-break toward emptier parts
            if score > best_score {
                best_score = score;
                best = p;
            }
        }
        assignment[v as usize] = best as u32;
        load[best] += weights.of(v)[0];
    }
    Partitioning::new(assignment, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use spp_graph::generate::GeneratorConfig;

    #[test]
    fn random_is_roughly_balanced() {
        let p = random_partition(10_000, 4, 1);
        let sizes = p.sizes();
        for s in sizes {
            assert!(s > 2_000 && s < 3_000);
        }
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_partition(100, 3), hash_partition(100, 3));
    }

    #[test]
    fn block_partition_contiguous() {
        let p = block_partition(10, 2);
        assert_eq!(p.assignment(), &[0, 0, 0, 0, 0, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn ldg_beats_random_on_community_graph() {
        let g = GeneratorConfig::planted_partition(800, 4800, 4, 0.9)
            .seed(2)
            .build();
        let w = VertexWeights::uniform(&g);
        let ldg = ldg_partition(&g, 4, &w);
        let rnd = random_partition(800, 4, 2);
        let cut_ldg = metrics::edge_cut_fraction(&g, &ldg);
        let cut_rnd = metrics::edge_cut_fraction(&g, &rnd);
        assert!(
            cut_ldg < cut_rnd,
            "LDG ({cut_ldg:.3}) should beat random ({cut_rnd:.3})"
        );
    }

    #[test]
    fn ldg_respects_capacity_loosely() {
        let g = GeneratorConfig::erdos_renyi(1000, 4000).seed(3).build();
        let w = VertexWeights::uniform(&g);
        let p = ldg_partition(&g, 4, &w);
        for s in p.sizes() {
            assert!(s <= 350, "part size {s} exceeds damped capacity");
        }
    }
}
