//! Hierarchical two-level partitioning (the paper's §6 future work:
//! "a hierarchical graph partitioning may better leverage the higher
//! intra-machine bandwidth among GPUs than inter-machine communication").
//!
//! The graph is first split across `machines`, then each machine's
//! induced subgraph is split across its `gpus_per_machine` GPUs. The flat
//! result has `machines × gpus_per_machine` parts with part ids grouped
//! machine-major, so `part / gpus_per_machine` recovers the machine.

use crate::multilevel::MultilevelPartitioner;
use crate::weights::NUM_CONSTRAINTS;
use crate::{Partitioning, VertexWeights};
use spp_graph::{CsrGraph, GraphBuilder, VertexId};

/// A two-level (machine, GPU) partitioning.
#[derive(Clone, Debug)]
pub struct HierarchicalPartitioning {
    /// Flat partitioning over `machines × gpus_per_machine` parts,
    /// machine-major.
    pub flat: Partitioning,
    /// Number of machines.
    pub machines: usize,
    /// GPUs per machine.
    pub gpus_per_machine: usize,
}

impl HierarchicalPartitioning {
    /// The machine owning flat part `p`.
    pub fn machine_of_part(&self, p: u32) -> u32 {
        p / self.gpus_per_machine as u32
    }

    /// The machine owning vertex `v`.
    pub fn machine_of(&self, v: VertexId) -> u32 {
        self.machine_of_part(self.flat.part_of(v))
    }

    /// Classifies a (viewer part, target vertex) pair: 0 = same GPU,
    /// 1 = same machine (intra-machine link), 2 = different machine
    /// (network).
    pub fn locality(&self, part: u32, v: VertexId) -> u8 {
        let vp = self.flat.part_of(v);
        if vp == part {
            0
        } else if self.machine_of_part(vp) == self.machine_of_part(part) {
            1
        } else {
            2
        }
    }
}

/// Builds a hierarchical partitioning: multilevel across machines, then
/// multilevel within each machine's induced subgraph.
///
/// # Panics
///
/// Panics if `machines` or `gpus_per_machine` is zero, or the graph has
/// fewer vertices than total parts.
pub fn hierarchical_partition(
    graph: &CsrGraph,
    weights: &VertexWeights,
    machines: usize,
    gpus_per_machine: usize,
    seed: u64,
) -> HierarchicalPartitioning {
    assert!(machines > 0 && gpus_per_machine > 0, "need positive counts");
    let total = machines * gpus_per_machine;
    assert!(
        graph.num_vertices() >= total,
        "fewer vertices than total parts"
    );
    let top = MultilevelPartitioner::new(machines)
        .seed(seed)
        .partition(graph, weights);
    if gpus_per_machine == 1 {
        return HierarchicalPartitioning {
            flat: top,
            machines,
            gpus_per_machine,
        };
    }

    let mut flat = vec![0u32; graph.num_vertices()];
    for m in 0..machines as u32 {
        let members = top.members(m);
        // Induced subgraph of this machine's vertices.
        let mut local_of = vec![u32::MAX; graph.num_vertices()];
        for (i, &v) in members.iter().enumerate() {
            local_of[v as usize] = i as u32;
        }
        let mut b = GraphBuilder::new(members.len());
        for &v in &members {
            for &u in graph.neighbors(v) {
                let lu = local_of[u as usize];
                if lu != u32::MAX {
                    b.add_edge(local_of[v as usize], lu);
                }
            }
        }
        let sub = b.build();
        let sub_weights = VertexWeights::from_raw(
            members
                .iter()
                .map(|&v| {
                    let mut w = [0u64; NUM_CONSTRAINTS];
                    w.copy_from_slice(weights.of(v));
                    w
                })
                .collect(),
        );
        let inner = MultilevelPartitioner::new(gpus_per_machine)
            .seed(seed ^ (m as u64 + 1))
            .partition(&sub, &sub_weights);
        for (i, &v) in members.iter().enumerate() {
            flat[v as usize] = m * gpus_per_machine as u32 + inner.part_of(i as u32);
        }
    }
    HierarchicalPartitioning {
        flat: Partitioning::new(flat, total),
        machines,
        gpus_per_machine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use spp_graph::generate::GeneratorConfig;

    fn graph() -> CsrGraph {
        GeneratorConfig::planted_partition(800, 6400, 8, 0.9)
            .seed(3)
            .build()
    }

    #[test]
    fn produces_machine_major_parts() {
        let g = graph();
        let w = VertexWeights::uniform(&g);
        let h = hierarchical_partition(&g, &w, 4, 2, 1);
        assert_eq!(h.flat.num_parts(), 8);
        for v in 0..800u32 {
            let p = h.flat.part_of(v);
            assert_eq!(h.machine_of(v), p / 2);
        }
        // All 8 parts populated.
        assert!(h.flat.sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn locality_classification() {
        let g = graph();
        let w = VertexWeights::uniform(&g);
        let h = hierarchical_partition(&g, &w, 2, 2, 2);
        let v0 = h.flat.members(0)[0];
        assert_eq!(h.locality(0, v0), 0); // own GPU
        let v1 = h.flat.members(1)[0];
        assert_eq!(h.locality(0, v1), 1); // sibling GPU, same machine
        let v2 = h.flat.members(2)[0];
        assert_eq!(h.locality(0, v2), 2); // other machine
    }

    #[test]
    fn hierarchy_localizes_cut_traffic() {
        // Versus flat 8-way partitioning with machine = part/2 assigned
        // arbitrarily, hierarchical partitioning should route a larger
        // share of cut edges within machines.
        let g = graph();
        let w = VertexWeights::uniform(&g);
        let h = hierarchical_partition(&g, &w, 4, 2, 4);
        let flat = MultilevelPartitioner::new(8).seed(4).partition(&g, &w);
        let intra_share = |assign: &Partitioning, machine_of: &dyn Fn(u32) -> u32| {
            let mut cut = 0usize;
            let mut intra = 0usize;
            for (v, u) in g.edges() {
                let (pv, pu) = (assign.part_of(v), assign.part_of(u));
                if pv != pu {
                    cut += 1;
                    if machine_of(pv) == machine_of(pu) {
                        intra += 1;
                    }
                }
            }
            intra as f64 / cut.max(1) as f64
        };
        let hier = intra_share(&h.flat, &|p| p / 2);
        let base = intra_share(&flat, &|p| p / 2);
        assert!(
            hier > base,
            "hierarchical intra-machine share {hier:.3} should exceed flat {base:.3}"
        );
    }

    #[test]
    fn single_gpu_per_machine_reduces_to_flat() {
        let g = graph();
        let w = VertexWeights::uniform(&g);
        let h = hierarchical_partition(&g, &w, 4, 1, 5);
        assert_eq!(h.flat.num_parts(), 4);
        assert_eq!(h.gpus_per_machine, 1);
    }

    #[test]
    fn balance_holds_at_gpu_level() {
        let g = graph();
        let w = VertexWeights::uniform(&g);
        let h = hierarchical_partition(&g, &w, 2, 4, 6);
        let imb = metrics::imbalance(&h.flat, &w);
        assert!(imb[0] < 1.3, "imbalance {imb:?}");
    }
}
