//! METIS-style multilevel k-way partitioning.
//!
//! Three phases, as in Karypis & Kumar (1997):
//!
//! 1. **Coarsening** — heavy-edge matching repeatedly contracts the graph
//!    until it is small (vertex and edge weights accumulate).
//! 2. **Initial partitioning** — greedy graph growing on the coarsest
//!    graph, balanced on total vertex weight.
//! 3. **Uncoarsening + refinement** — the partition is projected back
//!    through the levels; at each level boundary Fiduccia–Mattheyses-style
//!    passes move vertices to reduce the edge cut subject to
//!    multi-constraint balance limits (overall / train / val vertices and
//!    edges — the constraints the paper configures METIS with).

use crate::weights::NUM_CONSTRAINTS;
use crate::{Partitioning, VertexWeights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spp_graph::CsrGraph;

/// A weighted graph level in the multilevel hierarchy.
#[derive(Clone, Debug)]
struct Level {
    row_ptr: Vec<usize>,
    col: Vec<u32>,
    ew: Vec<u64>,
    vw: Vec<[u64; NUM_CONSTRAINTS]>,
    /// Map from the *finer* level's vertices to this level's vertices
    /// (empty for the finest level).
    coarse_of_fine: Vec<u32>,
}

impl Level {
    fn n(&self) -> usize {
        self.vw.len()
    }

    fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let v = v as usize;
        self.col[self.row_ptr[v]..self.row_ptr[v + 1]] // spp-hot: allow(h2-panic): row_ptr bounds are Level-construction CSR invariants (this is the level's checked accessor)
            .iter()
            .zip(&self.ew[self.row_ptr[v]..self.row_ptr[v + 1]]) // spp-hot: allow(h2-panic): row_ptr bounds are Level-construction CSR invariants (this is the level's checked accessor)
            .map(|(&c, &w)| (c, w))
    }
}

/// Configuration and entry point for multilevel partitioning.
///
/// # Example
///
/// ```
/// use spp_graph::generate::GeneratorConfig;
/// use spp_partition::{multilevel::MultilevelPartitioner, VertexWeights};
///
/// let g = GeneratorConfig::planted_partition(300, 1800, 3, 0.9).seed(0).build();
/// let w = VertexWeights::uniform(&g);
/// let p = MultilevelPartitioner::new(3).seed(7).partition(&g, &w);
/// assert_eq!(p.num_parts(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct MultilevelPartitioner {
    k: usize,
    seed: u64,
    balance_tolerance: f64,
    refine_passes: usize,
    coarsen_until: usize,
}

impl MultilevelPartitioner {
    /// Creates a partitioner for `k` parts with default tuning
    /// (5% balance tolerance, 8 refinement passes per level).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one part");
        Self {
            k,
            seed: 0,
            balance_tolerance: 1.05,
            refine_passes: 8,
            coarsen_until: (40 * k).max(256),
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-constraint balance tolerance (e.g. `1.05` = 5%).
    ///
    /// # Panics
    ///
    /// Panics if the tolerance is below 1.
    pub fn balance_tolerance(mut self, tol: f64) -> Self {
        assert!(tol >= 1.0, "tolerance must be >= 1");
        self.balance_tolerance = tol;
        self
    }

    /// Sets the number of refinement passes per level.
    pub fn refine_passes(mut self, passes: usize) -> Self {
        self.refine_passes = passes;
        self
    }

    /// Partitions `graph` with the given per-vertex weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != graph.num_vertices()` or the graph has
    /// fewer vertices than parts.
    pub fn partition(&self, graph: &CsrGraph, weights: &VertexWeights) -> Partitioning {
        assert_eq!(
            weights.len(),
            graph.num_vertices(),
            "weights/graph size mismatch"
        );
        assert!(graph.num_vertices() >= self.k, "fewer vertices than parts");
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Finest level from the input graph.
        let mut levels = vec![Level {
            row_ptr: graph.row_ptr().to_vec(),
            col: graph.col().to_vec(),
            ew: vec![1; graph.num_edges()],
            vw: weights.as_slice().to_vec(),
            coarse_of_fine: Vec::new(),
        }];

        // Phase 1: coarsen.
        while let Some(fine) = levels.last() {
            if fine.n() <= self.coarsen_until {
                break;
            }
            let coarse = coarsen(fine, &mut rng);
            // Stop if matching stalls (star-like graphs stop shrinking).
            if coarse.n() as f64 > fine.n() as f64 * 0.95 {
                break;
            }
            levels.push(coarse);
        }

        // Phase 2: initial partition on the coarsest level — several
        // random restarts of connectivity-driven greedy growing, keeping
        // the best refined cut.
        let limits = self.limits(weights);
        let mut assignment = Vec::new();
        let mut best_cut = u64::MAX;
        let coarsest = match levels.last() {
            Some(l) => l,
            None => return Partitioning::new(Vec::new(), self.k),
        };
        for _ in 0..4 {
            let mut cand = greedy_growing(coarsest, self.k, &mut rng);
            repair_balance(coarsest, &mut cand, self.k, &limits, &mut rng);
            refine(
                coarsest,
                &mut cand,
                self.k,
                &limits,
                self.refine_passes * 2,
                &mut rng,
            );
            repair_balance(coarsest, &mut cand, self.k, &limits, &mut rng);
            let cut = weighted_cut(coarsest, &cand);
            if cut < best_cut {
                best_cut = cut;
                assignment = cand;
            }
        }

        // Phase 3: project + refine through the levels.
        for li in (0..levels.len() - 1).rev() {
            let finer = &levels[li];
            let coarse_map = &levels[li + 1].coarse_of_fine;
            let mut fine_assignment = vec![0u32; finer.n()];
            for v in 0..finer.n() {
                fine_assignment[v] = assignment[coarse_map[v] as usize];
            }
            assignment = fine_assignment;
            refine(
                finer,
                &mut assignment,
                self.k,
                &limits,
                self.refine_passes,
                &mut rng,
            );
            repair_balance(finer, &mut assignment, self.k, &limits, &mut rng);
        }

        Partitioning::new(assignment, self.k)
    }

    /// Per-constraint load limits: `total/k * tol`, with one
    /// max-single-vertex-weight of absolute slack so sparse indicator
    /// constraints (train/val) never deadlock refinement.
    fn limits(&self, weights: &VertexWeights) -> [u64; NUM_CONSTRAINTS] {
        let totals = weights.totals();
        let mut max_single = [0u64; NUM_CONSTRAINTS];
        for w in weights.as_slice() {
            for c in 0..NUM_CONSTRAINTS {
                max_single[c] = max_single[c].max(w[c]);
            }
        }
        let mut limits = [u64::MAX; NUM_CONSTRAINTS];
        for c in 0..NUM_CONSTRAINTS {
            if totals[c] > 0 {
                let target = totals[c] as f64 / self.k as f64;
                limits[c] = (target * self.balance_tolerance).ceil() as u64 + max_single[c];
            }
        }
        limits
    }
}

/// Heavy-edge matching + contraction, producing the next coarser level.
fn coarsen(fine: &Level, rng: &mut StdRng) -> Level {
    let n = fine.n();
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut mate = vec![u32::MAX; n];
    for &v in &order {
        if mate[v as usize] != u32::MAX {
            continue;
        }
        let mut best = v; // match with self if no free neighbor
        let mut best_w = 0u64;
        for (u, w) in fine.neighbors(v) {
            if u != v && mate[u as usize] == u32::MAX && w > best_w {
                best = u;
                best_w = w;
            }
        }
        mate[v as usize] = best;
        mate[best as usize] = v;
    }

    // Assign coarse ids: pair gets one id.
    let mut coarse_of_fine = vec![u32::MAX; n];
    let mut nc = 0u32;
    for v in 0..n as u32 {
        if coarse_of_fine[v as usize] != u32::MAX {
            continue;
        }
        coarse_of_fine[v as usize] = nc;
        let m = mate[v as usize];
        if m != v {
            coarse_of_fine[m as usize] = nc;
        }
        nc += 1;
    }

    // Accumulate coarse vertex weights and adjacency.
    let nc = nc as usize;
    let mut vw = vec![[0u64; NUM_CONSTRAINTS]; nc];
    for v in 0..n {
        let c = coarse_of_fine[v] as usize;
        for i in 0..NUM_CONSTRAINTS {
            vw[c][i] += fine.vw[v][i];
        }
    }
    // Edge accumulation: bucket by coarse source, merge with a scratch map
    // keyed by coarse target (timestamped to avoid clearing).
    let mut row_ptr = vec![0usize; nc + 1];
    let mut col: Vec<u32> = Vec::with_capacity(fine.col.len());
    let mut ew: Vec<u64> = Vec::with_capacity(fine.col.len());
    // Fine vertices grouped by coarse id.
    let mut members_ptr = vec![0usize; nc + 1];
    for v in 0..n {
        members_ptr[coarse_of_fine[v] as usize + 1] += 1;
    }
    for c in 0..nc {
        members_ptr[c + 1] += members_ptr[c];
    }
    let mut members = vec![0u32; n];
    let mut cursor = members_ptr.clone();
    for v in 0..n as u32 {
        let c = coarse_of_fine[v as usize] as usize;
        members[cursor[c]] = v;
        cursor[c] += 1;
    }
    let mut stamp = vec![u32::MAX; nc];
    let mut slot = vec![0usize; nc];
    for c in 0..nc as u32 {
        let start = col.len();
        for &v in &members[members_ptr[c as usize]..members_ptr[c as usize + 1]] {
            for (u, w) in fine.neighbors(v) {
                let cu = coarse_of_fine[u as usize];
                if cu == c {
                    continue; // contracted self-loop
                }
                if stamp[cu as usize] == c {
                    ew[slot[cu as usize]] += w;
                } else {
                    stamp[cu as usize] = c;
                    slot[cu as usize] = col.len();
                    col.push(cu);
                    ew.push(w);
                }
            }
        }
        row_ptr[c as usize + 1] = col.len();
        let _ = start;
    }

    Level {
        row_ptr,
        col,
        ew,
        vw,
        coarse_of_fine,
    }
}

/// Greedy graph growing (GGGP-style): grow `k` regions from random seeds,
/// always absorbing the unassigned frontier vertex with the strongest
/// edge-weight connectivity to the growing region, until the region
/// reaches its share of total constraint-0 weight. Connectivity-driven
/// growth keeps regions cohesive even on hub-heavy graphs where plain BFS
/// floods across communities.
fn greedy_growing(level: &Level, k: usize, rng: &mut StdRng) -> Vec<u32> {
    use std::collections::BinaryHeap;
    let n = level.n();
    let total0: u64 = level.vw.iter().map(|w| w[0]).sum();
    let target = total0 / k as u64 + 1;
    let mut assignment = vec![u32::MAX; n];
    let mut conn = vec![0u64; n]; // connectivity of unassigned vertices to the current region
    let mut unassigned = n;
    for p in 0..k as u32 {
        if unassigned == 0 {
            break;
        }
        let seed = loop {
            let v = rng.gen_range(0..n) as u32;
            if assignment[v as usize] == u32::MAX {
                break v;
            }
        };
        // Max-heap of (connectivity, vertex) with lazy invalidation.
        let mut heap: BinaryHeap<(u64, u32)> = BinaryHeap::new();
        heap.push((1, seed));
        let mut load = 0u64;
        while load < target || (p as usize) == k - 1 {
            let Some((c, v)) = heap.pop() else { break };
            let vi = v as usize;
            if assignment[vi] != u32::MAX || c < conn[vi].max(1) {
                continue; // stale entry
            }
            assignment[vi] = p;
            conn[vi] = 0;
            unassigned -= 1;
            load += level.vw[vi][0];
            for (u, w) in level.neighbors(v) {
                let ui = u as usize;
                if assignment[ui] == u32::MAX {
                    conn[ui] += w;
                    heap.push((conn[ui], u));
                }
            }
        }
        // Residual connectivity is region-specific; reset for the next one.
        while let Some((_, v)) = heap.pop() {
            conn[v as usize] = 0;
        }
    }
    // Any stragglers (disconnected pieces) go to the lightest part.
    let mut loads = vec![0u64; k];
    for v in 0..n {
        if assignment[v] != u32::MAX {
            loads[assignment[v] as usize] += level.vw[v][0];
        }
    }
    for v in 0..n {
        if assignment[v] == u32::MAX {
            let p = (0..k).min_by_key(|&p| loads[p]).unwrap_or(0);
            assignment[v] = p as u32;
            loads[p] += level.vw[v][0];
        }
    }
    assignment
}

/// Total weighted cut of an assignment (each undirected edge counted
/// twice, which is fine for comparisons).
fn weighted_cut(level: &Level, assignment: &[u32]) -> u64 {
    let mut cut = 0u64;
    for v in 0..level.n() as u32 {
        for (u, w) in level.neighbors(v) {
            if assignment[v as usize] != assignment[u as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// Explicit balance repair: while any part exceeds a constraint limit,
/// move boundary vertices of the offending part to the part with the most
/// headroom, preferring moves with the least cut damage. Caps the number
/// of moves to stay linear.
fn repair_balance(
    level: &Level,
    assignment: &mut [u32],
    k: usize,
    limits: &[u64; NUM_CONSTRAINTS],
    rng: &mut StdRng,
) {
    let n = level.n();
    let mut loads = vec![[0u64; NUM_CONSTRAINTS]; k];
    for v in 0..n {
        let p = assignment[v] as usize;
        for c in 0..NUM_CONSTRAINTS {
            loads[p][c] += level.vw[v][c];
        }
    }
    let over = |loads: &[[u64; NUM_CONSTRAINTS]], p: usize| -> bool {
        (0..NUM_CONSTRAINTS).any(|c| loads[p][c] > limits[c])
    };
    let mut moves_left = 2 * n;
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut progress = true;
    while progress && moves_left > 0 && (0..k).any(|p| over(&loads, p)) {
        progress = false;
        for &v in &order {
            let vi = v as usize;
            let pv = assignment[vi] as usize;
            if !over(&loads, pv) {
                continue;
            }
            // Destination: most constraint-0 headroom that fits v.
            let mut best: Option<usize> = None;
            let mut best_headroom = 0i64;
            for q in 0..k {
                if q == pv || !fits(&loads[q], &level.vw[vi], limits) {
                    continue;
                }
                let headroom = limits[0].saturating_sub(loads[q][0]) as i64;
                if headroom > best_headroom {
                    best_headroom = headroom;
                    best = Some(q);
                }
            }
            if let Some(q) = best {
                for c in 0..NUM_CONSTRAINTS {
                    loads[pv][c] -= level.vw[vi][c];
                    loads[q][c] += level.vw[vi][c];
                }
                assignment[vi] = q as u32;
                progress = true;
                moves_left -= 1;
                if moves_left == 0 {
                    break;
                }
            }
        }
    }
}

/// Boundary FM-style refinement: move boundary vertices to the neighboring
/// part with the highest positive cut gain, subject to balance limits.
fn refine(
    level: &Level,
    assignment: &mut [u32],
    k: usize,
    limits: &[u64; NUM_CONSTRAINTS],
    passes: usize,
    rng: &mut StdRng,
) {
    let n = level.n();
    let mut loads = vec![[0u64; NUM_CONSTRAINTS]; k];
    for v in 0..n {
        let p = assignment[v] as usize;
        for c in 0..NUM_CONSTRAINTS {
            loads[p][c] += level.vw[v][c];
        }
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut conn = vec![0u64; k]; // scratch: edge weight to each part
    let mut touched: Vec<usize> = Vec::new();
    for _ in 0..passes {
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut moved = 0usize;
        for &v in &order {
            let pv = assignment[v as usize] as usize;
            // Connectivity to each adjacent part.
            touched.clear();
            let mut is_boundary = false;
            for (u, w) in level.neighbors(v) {
                let pu = assignment[u as usize] as usize;
                if conn[pu] == 0 {
                    touched.push(pu);
                }
                conn[pu] += w;
                if pu != pv {
                    is_boundary = true;
                }
            }
            if is_boundary {
                let own = conn[pv];
                let mut best_p = pv;
                let mut best_gain = 0i64;
                for &p in &touched {
                    if p == pv {
                        continue;
                    }
                    let gain = conn[p] as i64 - own as i64;
                    if gain > best_gain && fits(&loads[p], &level.vw[v as usize], limits) {
                        best_gain = gain;
                        best_p = p;
                    }
                }
                if best_p != pv {
                    for c in 0..NUM_CONSTRAINTS {
                        loads[pv][c] -= level.vw[v as usize][c];
                        loads[best_p][c] += level.vw[v as usize][c];
                    }
                    assignment[v as usize] = best_p as u32;
                    moved += 1;
                }
            }
            for &p in &touched {
                conn[p] = 0;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[inline]
fn fits(
    load: &[u64; NUM_CONSTRAINTS],
    vw: &[u64; NUM_CONSTRAINTS],
    limits: &[u64; NUM_CONSTRAINTS],
) -> bool {
    (0..NUM_CONSTRAINTS).all(|c| load[c] + vw[c] <= limits[c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::simple::random_partition;
    use spp_graph::dataset::SyntheticSpec;
    use spp_graph::generate::GeneratorConfig;

    #[test]
    fn recovers_planted_structure() {
        let g = GeneratorConfig::planted_partition(1000, 8000, 4, 0.95)
            .seed(1)
            .build();
        let w = VertexWeights::uniform(&g);
        let p = MultilevelPartitioner::new(4).seed(2).partition(&g, &w);
        let cut = metrics::edge_cut_fraction(&g, &p);
        let rnd = metrics::edge_cut_fraction(&g, &random_partition(1000, 4, 2));
        assert!(
            cut < rnd / 3.0,
            "multilevel cut {cut:.3} should be far below random {rnd:.3}"
        );
    }

    #[test]
    fn balances_all_constraints() {
        let ds = SyntheticSpec::new("t", 2000, 10.0, 4, 8)
            .split_fractions(0.1, 0.05, 0.2)
            .seed(3)
            .build();
        let w = VertexWeights::from_dataset(&ds);
        let p = MultilevelPartitioner::new(4)
            .seed(4)
            .partition(&ds.graph, &w);
        let imb = metrics::imbalance(&p, &w);
        for (c, &i) in imb.iter().enumerate() {
            assert!(i < 1.35, "constraint {c} imbalance {i:.3} too high");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = GeneratorConfig::rmat(500, 3000).seed(5).build();
        let w = VertexWeights::uniform(&g);
        let a = MultilevelPartitioner::new(3).seed(6).partition(&g, &w);
        let b = MultilevelPartitioner::new(3).seed(6).partition(&g, &w);
        assert_eq!(a, b);
    }

    #[test]
    fn single_part_trivial() {
        let g = GeneratorConfig::erdos_renyi(50, 200).seed(7).build();
        let w = VertexWeights::uniform(&g);
        let p = MultilevelPartitioner::new(1).partition(&g, &w);
        assert!(p.assignment().iter().all(|&x| x == 0));
        assert_eq!(metrics::edge_cut(&g, &p), 0);
    }

    #[test]
    fn handles_star_graph() {
        // Matching stalls on stars; the partitioner must still terminate
        // and produce a valid (if imperfect) partition.
        let g = spp_graph::generate::star(1000);
        let w = VertexWeights::uniform(&g);
        let p = MultilevelPartitioner::new(4).seed(8).partition(&g, &w);
        assert_eq!(p.num_vertices(), 1000);
        assert_eq!(p.num_parts(), 4);
    }

    #[test]
    fn all_parts_nonempty_on_reasonable_graphs() {
        let g = GeneratorConfig::rmat(2000, 16_000).seed(9).build();
        let w = VertexWeights::uniform(&g);
        let p = MultilevelPartitioner::new(8).seed(10).partition(&g, &w);
        for (i, s) in p.sizes().iter().enumerate() {
            assert!(*s > 0, "part {i} empty");
        }
    }
}
