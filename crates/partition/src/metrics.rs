//! Partition quality metrics.

use crate::weights::NUM_CONSTRAINTS;
use crate::{Partitioning, VertexWeights};
use spp_graph::{CsrGraph, VertexId};

/// Number of *undirected* edges crossing partition boundaries.
///
/// Each cut edge appears twice in a symmetric CSR; this counts it once.
pub fn edge_cut(graph: &CsrGraph, part: &Partitioning) -> usize {
    assert_eq!(graph.num_vertices(), part.num_vertices(), "size mismatch");
    let cut_directed: usize = graph
        .edges()
        .filter(|&(v, u)| part.part_of(v) != part.part_of(u))
        .count();
    cut_directed / 2
}

/// Fraction of (undirected) edges that are cut.
pub fn edge_cut_fraction(graph: &CsrGraph, part: &Partitioning) -> f64 {
    if graph.num_edges() == 0 {
        return 0.0;
    }
    edge_cut(graph, part) as f64 / (graph.num_edges() as f64 / 2.0)
}

/// Per-constraint imbalance: `max_k(weight_k) / (total / K)` for each of
/// the [`NUM_CONSTRAINTS`] constraints. 1.0 is perfectly balanced; METIS
/// typically targets ≤ 1.05 or so. Constraints with zero total weight
/// report 1.0.
pub fn imbalance(part: &Partitioning, weights: &VertexWeights) -> [f64; NUM_CONSTRAINTS] {
    assert_eq!(part.num_vertices(), weights.len(), "size mismatch");
    let k = part.num_parts();
    let mut per_part = vec![[0u64; NUM_CONSTRAINTS]; k];
    for v in 0..part.num_vertices() {
        let p = part.part_of(v as VertexId) as usize;
        let w = weights.of(v as VertexId);
        for c in 0..NUM_CONSTRAINTS {
            per_part[p][c] += w[c];
        }
    }
    let totals = weights.totals();
    let mut out = [1.0f64; NUM_CONSTRAINTS];
    for c in 0..NUM_CONSTRAINTS {
        if totals[c] == 0 {
            continue;
        }
        let target = totals[c] as f64 / k as f64;
        let maxw = per_part.iter().map(|w| w[c]).max().unwrap_or(0) as f64;
        out[c] = maxw / target;
    }
    out
}

/// For each part, the set of *remote* vertices adjacent to it (its 1-hop
/// halo) — the vertices the "1-hop" caching baseline replicates.
pub fn one_hop_halos(graph: &CsrGraph, part: &Partitioning) -> Vec<Vec<VertexId>> {
    let k = part.num_parts();
    let mut halos: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for (v, u) in graph.edges() {
        let pv = part.part_of(v);
        if pv != part.part_of(u) {
            halos[pv as usize].push(u);
        }
    }
    for h in &mut halos {
        h.sort_unstable();
        h.dedup();
    }
    halos
}

/// Number of vertices whose neighborhood crosses a boundary (boundary
/// vertices), per part.
pub fn boundary_counts(graph: &CsrGraph, part: &Partitioning) -> Vec<usize> {
    let mut counts = vec![0usize; part.num_parts()];
    for v in 0..graph.num_vertices() as VertexId {
        let pv = part.part_of(v);
        if graph.neighbors(v).iter().any(|&u| part.part_of(u) != pv) {
            counts[pv as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_graph::generate::ring_with_chords;
    use spp_graph::GraphBuilder;

    #[test]
    fn edge_cut_counts_undirected_once() {
        // Path 0-1-2-3, split {0,1} | {2,3}: exactly one cut edge.
        let mut b = GraphBuilder::new(4);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(2, 3);
        let g = b.build();
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert_eq!(edge_cut(&g, &p), 1);
        assert!((edge_cut_fraction(&g, &p) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_balance_reports_one() {
        let g = ring_with_chords(8, 1);
        let w = VertexWeights::uniform(&g);
        let p = Partitioning::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2);
        let imb = imbalance(&p, &w);
        assert!((imb[0] - 1.0).abs() < 1e-12);
        // Zero-total constraints (train/val) report 1.0.
        assert_eq!(imb[1], 1.0);
        assert_eq!(imb[2], 1.0);
    }

    #[test]
    fn imbalance_detects_skew() {
        let g = ring_with_chords(8, 1);
        let w = VertexWeights::uniform(&g);
        let p = Partitioning::new(vec![0, 0, 0, 0, 0, 0, 1, 1], 2);
        let imb = imbalance(&p, &w);
        assert!((imb[0] - 1.5).abs() < 1e-12); // 6 / (8/2)
    }

    #[test]
    fn halo_of_path_partition() {
        let mut b = GraphBuilder::new(4);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(2, 3);
        let g = b.build();
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        let halos = one_hop_halos(&g, &p);
        assert_eq!(halos[0], vec![2]);
        assert_eq!(halos[1], vec![1]);
    }

    #[test]
    fn boundary_counts_path() {
        let mut b = GraphBuilder::new(4);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(2, 3);
        let g = b.build();
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert_eq!(boundary_counts(&g, &p), vec![1, 1]);
    }
}
